"""Scale testing of candidate Lustre releases (Lesson 9, §IV-B).

"Titan is a unique resource that supports testing at extreme scale ...
the OLCF allocates the Titan and the Spider PFS for full scale tests of
candidate Lustre releases.  These tests identify edge cases and problems
that would not manifest themselves otherwise."

The model behind the lesson: a candidate release carries latent defects
whose *trigger scale* — the client count at which they first manifest —
is heavy-tail distributed (races, resource exhaustion, and recovery edge
cases need thousands of clients to line up).  A test campaign at scale
``S`` exposes exactly the defects with trigger ≤ S (given enough test
time); everything above S escapes into production, where it costs an
outage per defect.  Comparing a vendor-lab campaign against a Titan-scale
campaign reproduces why full-scale testing exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.sim.rng import RngStreams, bounded_pareto

__all__ = ["LatentDefect", "CandidateRelease", "ScaleTestCampaign", "CampaignOutcome"]


@dataclass(frozen=True)
class LatentDefect:
    """One latent defect in a candidate release."""

    defect_id: int
    trigger_scale: int  # clients needed for it to manifest
    detect_probability: float  # per test run at/above trigger scale

    def __post_init__(self) -> None:
        if self.trigger_scale < 1:
            raise ValueError("trigger_scale must be >= 1")
        if not (0 < self.detect_probability <= 1):
            raise ValueError("detect_probability must be in (0, 1]")


@dataclass
class CandidateRelease:
    """A Lustre release candidate with seeded latent defects.

    Trigger scales follow a bounded Pareto: most defects show up with a
    handful of clients, a material tail only at thousands — the "would not
    manifest themselves otherwise" population.
    """

    name: str = "lustre-2.x-rc"
    n_defects: int = 40
    alpha: float = 0.3  # heavy tail: a material large-scale-only population
    min_scale: int = 2
    max_scale: int = 20_000
    seed: int = 0
    defects: list[LatentDefect] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_defects < 0:
            raise ValueError("n_defects must be non-negative")
        if self.defects:
            return
        rng = RngStreams(self.seed).get(f"release:{self.name}")
        scales = bounded_pareto(rng, self.alpha, float(self.min_scale),
                                float(self.max_scale), size=self.n_defects)
        probs = rng.uniform(0.5, 0.95, size=self.n_defects)
        self.defects = [
            LatentDefect(i, int(round(s)), float(p))
            for i, (s, p) in enumerate(zip(scales, probs))
        ]

    def defects_above(self, scale: int) -> int:
        return sum(1 for d in self.defects if d.trigger_scale > scale)


@dataclass(frozen=True)
class CampaignOutcome:
    """Result of one test campaign."""

    test_scale: int
    n_runs: int
    caught: int
    escaped: int
    escaped_large_scale: int  # escapes that needed > test_scale clients

    @property
    def catch_rate(self) -> float:
        total = self.caught + self.escaped
        return self.caught / total if total else 1.0

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("test scale", f"{self.test_scale:,} clients"),
            ("test runs", str(self.n_runs)),
            ("defects caught", str(self.caught)),
            ("defects escaped to production", str(self.escaped)),
            ("  of which needed larger scale", str(self.escaped_large_scale)),
            ("catch rate", f"{self.catch_rate:.0%}"),
        ]


class ScaleTestCampaign:
    """Run a release candidate through ``n_runs`` tests at ``test_scale``."""

    def __init__(self, test_scale: int, n_runs: int = 8, *, seed: int = 1) -> None:
        if test_scale < 1 or n_runs < 1:
            raise ValueError("test_scale and n_runs must be >= 1")
        self.test_scale = test_scale
        self.n_runs = n_runs
        self._rng = RngStreams(seed).get("campaign")

    def run(self, release: CandidateRelease) -> CampaignOutcome:
        caught = 0
        escaped = 0
        escaped_large = 0
        for defect in release.defects:
            if defect.trigger_scale <= self.test_scale:
                p_miss = (1.0 - defect.detect_probability) ** self.n_runs
                if self._rng.random() >= p_miss:
                    caught += 1
                else:
                    escaped += 1
            else:
                escaped += 1
                escaped_large += 1
        return CampaignOutcome(
            test_scale=self.test_scale,
            n_runs=self.n_runs,
            caught=caught,
            escaped=escaped,
            escaped_large_scale=escaped_large,
        )
