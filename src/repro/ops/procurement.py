"""Procurement: the RFP, vendor proposals, and weighted evaluation
(§III, Lessons 3 & 5).

The model captures the structure of the Spider II acquisition:

* an :class:`Rfp` with performance floors (1 TB/s sequential, 240 GB/s
  random), a capacity floor, a budget range, and the SSU as the unit of
  configuration/pricing/benchmarking;
* :class:`VendorProposal` — either the **block storage** model (OLCF
  integrates; cheaper, design flexibility, integration risk on OLCF) or
  the **appliance** model (vendor integrates; pricier, risk on vendor);
* :class:`ProcurementEvaluation` — the Lesson 5 weighted scoring across
  technical merit, performance, schedule, TCO, past performance, and risk,
  with benchmark-suite validation of the performance claims.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.ssu import SsuSpec
from repro.units import GB, MiB, PB, TB

__all__ = ["ResponseModel", "Rfp", "VendorProposal", "ScoreCard", "ProcurementEvaluation"]


class ResponseModel(enum.Enum):
    """The two RFP response models §III-B allowed vendors to bid."""

    BLOCK_STORAGE = "block"  # OLCF integrates servers + network + Lustre
    APPLIANCE = "appliance"  # vendor-integrated turnkey


@dataclass(frozen=True)
class Rfp:
    """The Statement of Work's quantitative floors."""

    sequential_floor: float = TB  # 1 TB/s (75% of 600 TB in 6 min)
    random_floor: float = 240 * GB  # from the 20-25% single-disk ratio
    capacity_floor: int = 20 * PB
    budget_min: float = 25.0  # normalized money units
    budget_max: float = 42.0
    delivery_months_max: int = 14

    def __post_init__(self) -> None:
        if self.sequential_floor <= 0 or self.random_floor <= 0:
            raise ValueError("performance floors must be positive")
        if self.budget_min > self.budget_max:
            raise ValueError("budget_min cannot exceed budget_max")


@dataclass(frozen=True)
class VendorProposal:
    """One response: an SSU configuration priced at scale."""

    vendor: str
    model: ResponseModel
    ssu: SsuSpec
    n_ssus: int
    price_per_ssu: float
    integration_cost: float  # OLCF's own effort (block) or vendor fee (appliance)
    annual_service_cost: float
    delivery_months: int
    past_performance: float = 0.7  # [0, 1] history score
    claimed_seq_bw_per_ssu: float | None = None  # None -> use nominal

    @property
    def seq_bw_per_ssu(self) -> float:
        if self.claimed_seq_bw_per_ssu is not None:
            return self.claimed_seq_bw_per_ssu
        return self.ssu.nominal_block_bandwidth()

    @property
    def total_seq_bw(self) -> float:
        return self.n_ssus * self.seq_bw_per_ssu

    @property
    def total_random_bw(self) -> float:
        # the 20-25% disk-level ratio propagates through the array
        ratio = self.ssu.disk.random_efficiency(MiB)
        return self.total_seq_bw * ratio

    @property
    def total_capacity(self) -> int:
        return self.n_ssus * self.ssu.usable_capacity

    def tco(self, lifetime_years: int = 5) -> float:
        """Total cost of ownership over the system lifetime."""
        capital = self.n_ssus * self.price_per_ssu + self.integration_cost
        return capital + lifetime_years * self.annual_service_cost

    def integration_risk(self) -> float:
        """Residual risk score in [0, 1]: the block model shifts
        integration/performance risk onto the buyer (§III-C)."""
        return 0.45 if self.model is ResponseModel.BLOCK_STORAGE else 0.2


@dataclass(frozen=True)
class ScoreCard:
    """Weighted evaluation of one proposal."""

    vendor: str
    compliant: bool
    scores: dict[str, float]
    weighted_total: float

    def row(self) -> tuple:
        return (self.vendor, "yes" if self.compliant else "NO",
                *(f"{self.scores[k]:.2f}" for k in sorted(self.scores)),
                f"{self.weighted_total:.3f}")


class ProcurementEvaluation:
    """Lesson 5: weighted, every-element scoring of all responses."""

    DEFAULT_WEIGHTS = {
        "performance": 0.30,
        "capacity": 0.15,
        "tco": 0.25,
        "schedule": 0.10,
        "past_performance": 0.10,
        "risk": 0.10,
    }

    def __init__(self, rfp: Rfp, *, weights: dict[str, float] | None = None,
                 buyer_integration_expertise: float = 0.8) -> None:
        self.rfp = rfp
        self.weights = dict(weights or self.DEFAULT_WEIGHTS)
        if abs(sum(self.weights.values()) - 1.0) > 1e-9:
            raise ValueError("weights must sum to 1")
        if not (0 <= buyer_integration_expertise <= 1):
            raise ValueError("expertise must be in [0, 1]")
        #: a buyer that has run large PFS deployments can *accept* the block
        #: model's risk (this is what let OLCF take the cheaper path, §III-C)
        self.buyer_integration_expertise = buyer_integration_expertise

    def compliant(self, p: VendorProposal) -> bool:
        return (
            p.total_seq_bw >= self.rfp.sequential_floor
            and p.total_random_bw >= self.rfp.random_floor
            and p.total_capacity >= self.rfp.capacity_floor
            and p.tco() <= self.rfp.budget_max
            and p.delivery_months <= self.rfp.delivery_months_max
        )

    def score(self, p: VendorProposal) -> ScoreCard:
        rfp = self.rfp
        perf = min(1.0, 0.5 * p.total_seq_bw / rfp.sequential_floor
                   + 0.5 * p.total_random_bw / rfp.random_floor) \
            if rfp.sequential_floor else 0.0
        capacity = min(1.0, p.total_capacity / (1.5 * rfp.capacity_floor))
        tco = max(0.0, 1.0 - (p.tco() - rfp.budget_min)
                  / max(rfp.budget_max - rfp.budget_min, 1e-9))
        tco = min(1.0, tco)
        schedule = max(0.0, 1.0 - p.delivery_months / rfp.delivery_months_max)
        # Risk score: residual risk mitigated by buyer expertise for the
        # block model (the buyer absorbs integration risk it can handle).
        residual = p.integration_risk()
        if p.model is ResponseModel.BLOCK_STORAGE:
            residual *= (1.0 - self.buyer_integration_expertise)
        risk = 1.0 - residual
        scores = {
            "performance": perf,
            "capacity": capacity,
            "tco": tco,
            "schedule": schedule,
            "past_performance": p.past_performance,
            "risk": risk,
        }
        total = sum(self.weights[k] * v for k, v in scores.items())
        return ScoreCard(vendor=p.vendor, compliant=self.compliant(p),
                         scores=scores, weighted_total=total)

    def select(self, proposals: list[VendorProposal]) -> tuple[ScoreCard, list[ScoreCard]]:
        """Score all proposals; the winner is the highest-scoring compliant
        response.  Raises if nothing complies (a failed procurement)."""
        cards = [self.score(p) for p in proposals]
        compliant = [c for c in cards if c.compliant]
        if not compliant:
            raise RuntimeError("no compliant proposals — RFP must be revised")
        winner = max(compliant, key=lambda c: c.weighted_total)
        return winner, cards
