"""Disk-failure / rebuild-exposure simulation.

§IV-A credits OLCF with pushing vendors to add "parity de-clustering for
faster disk rebuilds and improved reliability characteristics".  This
module quantifies that: a Monte-Carlo failure process over the whole disk
population, rebuild windows per RAID group, and the exposure metrics that
matter operationally —

* how often a group runs degraded (one erasure) and critical (two);
* the expected rate of data-loss events (three overlapping erasures in
  one 8+2 group);
* the analytic MTTDL for cross-checking the simulation.

The declustering ablation (benchmark A2) compares conventional rebuilds
against declustered ones (``declustering_speedup`` × faster) on identical
failure traces, so the difference is purely the rebuild window.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from repro.hardware.raid import RaidGeometry
from repro.sim.rng import RngStreams
from repro.units import DAY, HOUR

__all__ = ["ReliabilityReport", "ReliabilitySim", "analytic_mttdl_years"]

_YEAR = 365.0 * DAY


@dataclass(frozen=True)
class ReliabilityReport:
    """Outcome of one simulated operating period."""

    years: float
    n_disks: int
    n_groups: int
    failures: int
    rebuilds_completed: int
    degraded_group_hours: float
    critical_group_hours: float  # two concurrent erasures in a group
    data_loss_events: int
    mean_rebuild_hours: float

    @property
    def failures_per_year(self) -> float:
        return self.failures / self.years

    @property
    def loss_events_per_year(self) -> float:
        return self.data_loss_events / self.years

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("simulated years", f"{self.years:.0f}"),
            ("disk failures", f"{self.failures} "
                              f"({self.failures_per_year:.0f}/yr)"),
            ("rebuilds completed", str(self.rebuilds_completed)),
            ("mean rebuild window", f"{self.mean_rebuild_hours:.1f} h"),
            ("degraded group-hours/yr",
             f"{self.degraded_group_hours / self.years:.0f}"),
            ("critical group-hours/yr",
             f"{self.critical_group_hours / self.years:.2f}"),
            ("data-loss events", str(self.data_loss_events)),
        ]


def analytic_mttdl_years(
    geometry: RaidGeometry,
    *,
    n_groups: int,
    annual_failure_rate: float,
    rebuild_hours: float,
) -> float:
    """Closed-form RAID-6 MTTDL (independent exponential failures).

    Standard birth-death chain: with per-disk rate λ, width n, repair rate
    μ = 1/rebuild, a single group's MTTDL ≈ μ² / (n·(n-1)·(n-2)·λ³);
    the system of ``n_groups`` loses data ``n_groups`` × as often.
    """
    if not (0 < annual_failure_rate < 1):
        raise ValueError("annual_failure_rate must be in (0, 1)")
    if rebuild_hours <= 0 or n_groups <= 0:
        raise ValueError("rebuild_hours and n_groups must be positive")
    lam = annual_failure_rate  # per year
    mu = (365.0 * 24.0) / rebuild_hours  # repairs per year
    n = geometry.width
    group_mttdl = mu ** 2 / (n * (n - 1) * (n - 2) * lam ** 3)
    return group_mttdl / n_groups


class ReliabilitySim:
    """Monte-Carlo failure/rebuild replay over a disk population."""

    def __init__(
        self,
        *,
        n_groups: int = 2016,
        geometry: RaidGeometry | None = None,
        annual_failure_rate: float = 0.025,
        rebuild_hours: float = 24.0,
        declustered: bool = False,
        seed: int = 0,
    ) -> None:
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        if rebuild_hours <= 0:
            raise ValueError("rebuild_hours must be positive")
        self.geometry = geometry or RaidGeometry()
        self.n_groups = n_groups
        self.n_disks = n_groups * self.geometry.width
        self.afr = annual_failure_rate
        self.declustered = declustered
        self.rebuild_seconds = rebuild_hours * HOUR
        if declustered:
            self.rebuild_seconds /= self.geometry.declustering_speedup
        self._rng = RngStreams(seed)

    def _failure_times(self, horizon: float) -> list[tuple[float, int]]:
        """(time, disk) failure events over [0, horizon), exponential
        inter-failure per disk with rate afr/year."""
        gen = self._rng.get("failures")
        rate_per_sec = self.afr / _YEAR
        events: list[tuple[float, int]] = []
        # Aggregate process: total rate = n_disks * rate; thin by disk id.
        t = 0.0
        total_rate = self.n_disks * rate_per_sec
        while True:
            t += gen.exponential(1.0 / total_rate)
            if t >= horizon:
                break
            events.append((t, int(gen.integers(0, self.n_disks))))
        return events

    def run(self, years: float = 5.0) -> ReliabilityReport:
        """Replay ``years`` of failures; track group states exactly."""
        if years <= 0:
            raise ValueError("years must be positive")
        horizon = years * _YEAR
        events = self._failure_times(horizon)

        # Per-group: heap of rebuild completion times.
        rebuilding: dict[int, list[float]] = {}
        degraded_hours = 0.0
        critical_hours = 0.0
        losses = 0
        rebuilds_done = 0

        def _expire(group: int, now: float) -> None:
            nonlocal rebuilds_done
            heap = rebuilding.get(group)
            while heap and heap[0] <= now:
                heapq.heappop(heap)
                rebuilds_done += 1
            if heap is not None and not heap:
                del rebuilding[group]

        for t, disk in events:
            group = disk // self.geometry.width
            _expire(group, t)
            concurrent = len(rebuilding.get(group, []))
            end = t + self.rebuild_seconds
            if concurrent == 0:
                degraded_hours += self.rebuild_seconds / HOUR
            elif concurrent == 1:
                critical_hours += self.rebuild_seconds / HOUR
            else:
                losses += 1
            heapq.heappush(rebuilding.setdefault(group, []), end)
        # Expire whatever finishes before the horizon.
        for group in list(rebuilding):
            _expire(group, horizon)

        mean_rebuild = self.rebuild_seconds / HOUR
        return ReliabilityReport(
            years=years,
            n_disks=self.n_disks,
            n_groups=self.n_groups,
            failures=len(events),
            rebuilds_completed=rebuilds_done,
            degraded_group_hours=degraded_hours,
            critical_group_hours=critical_hours,
            data_loss_events=losses,
            mean_rebuild_hours=mean_rebuild,
        )
