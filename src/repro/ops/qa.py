"""Performance quality assurance with thin file systems (Lesson 16).

"the Spider file systems were provisioned with a small part of each RAID
volume reserved for long-term testing ...  This 'thin' file system, which
contains no user data, can be used to run destructive benchmarks even
after Spider has been put into production.  It also allows for performance
comparisons between full file systems and those that are freshly
formatted."

:class:`ThinFilesystem` reserves a slice of every OST; destructive
benchmarks format and re-test it at will.  :class:`PerformanceQa` records
the deployment-time baseline and periodically re-measures, flagging
components whose delivered performance regressed beyond a tolerance — the
"performance QA" discipline §V-D prescribes for the lifetime of the PFS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spider import SpiderSystem
from repro.iobench.obdfilter_survey import ObdfilterSurvey
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.mds import MdsSpec, MetadataServer
from repro.lustre.ost import Ost, OstSpec
from repro.sim.rng import RngStreams

__all__ = ["ThinFilesystem", "QaBaseline", "QaFinding", "PerformanceQa"]


class ThinFilesystem:
    """A destructive-test file system over reserved OST slices."""

    def __init__(self, system: SpiderSystem, *, reserve_fraction: float = 0.01,
                 name: str = "thin") -> None:
        if not (0 < reserve_fraction < 0.5):
            raise ValueError("reserve_fraction must be in (0, 0.5)")
        self.system = system
        self.reserve_fraction = reserve_fraction
        self.name = name
        self.formats = 0
        self.fs = self._format()

    def _format(self) -> LustreFilesystem:
        slice_bytes = int(
            self.system.osts[0].spec.capacity_bytes * self.reserve_fraction
        )
        thin_osts = [
            Ost(o.index, OstSpec(capacity_bytes=slice_bytes),
                ssu_index=o.ssu_index, group_index=o.group_index,
                oss_name=o.oss_name)
            for o in self.system.osts
        ]
        self.formats += 1
        return LustreFilesystem(
            f"{self.name}{self.formats}", thin_osts,
            MetadataServer(MdsSpec(), name=f"{self.name}-mds"),
        )

    def reformat(self) -> LustreFilesystem:
        """Tear down and rebuild — the destructive-test cycle.  User data
        is untouched because the slice never holds any."""
        self.fs = self._format()
        return self.fs

    @property
    def capacity_bytes(self) -> int:
        return self.fs.capacity_bytes

    def capacity_overhead(self) -> float:
        """Fraction of total system capacity the reservation consumes —
        Lesson 16's acquisition-planning line item."""
        return self.capacity_bytes / self.system.total_capacity_bytes()


@dataclass(frozen=True)
class QaBaseline:
    """The deployment-time per-OST performance record."""

    taken_at: float
    write_bw: np.ndarray  # per OST, bytes/s

    def __post_init__(self) -> None:
        object.__setattr__(self, "write_bw", np.asarray(self.write_bw, dtype=float))


@dataclass(frozen=True)
class QaFinding:
    """One OST whose measured bandwidth regressed from its baseline."""

    ost_index: int
    baseline_bw: float
    current_bw: float

    @property
    def regression(self) -> float:
        if self.baseline_bw <= 0:
            return 0.0
        return 1.0 - self.current_bw / self.baseline_bw


class PerformanceQa:
    """Baseline + periodic re-measurement over the thin file system."""

    def __init__(self, system: SpiderSystem, *, tolerance: float = 0.10,
                 seed: int = 5) -> None:
        if not (0 < tolerance < 1):
            raise ValueError("tolerance must be in (0, 1)")
        self.system = system
        self.tolerance = tolerance
        self._rng = RngStreams(seed).get("qa.measure")
        self.baseline: QaBaseline | None = None
        self.findings_history: list[list[QaFinding]] = []

    def _measure(self) -> np.ndarray:
        survey = ObdfilterSurvey(self.system, mode="isolated",
                                 noise_sigma=0.005)
        results = survey.run(rng=self._rng)
        return np.array([r.write for r in results])

    def record_baseline(self, now: float = 0.0) -> QaBaseline:
        self.baseline = QaBaseline(taken_at=now, write_bw=self._measure())
        return self.baseline

    def run_qa_cycle(self, now: float = 0.0) -> list[QaFinding]:
        """Re-measure and return the OSTs regressed beyond tolerance."""
        if self.baseline is None:
            raise RuntimeError("record_baseline must run first")
        current = self._measure()
        base = self.baseline.write_bw
        regressed = np.flatnonzero(current < base * (1.0 - self.tolerance))
        findings = [
            QaFinding(ost_index=int(i), baseline_bw=float(base[i]),
                      current_bw=float(current[i]))
            for i in regressed
        ]
        self.findings_history.append(findings)
        return findings
