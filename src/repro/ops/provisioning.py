"""Diskless provisioning: GeDI + configuration management (Lesson 7).

"This mechanism allows the nodes to boot over the control network, tftp,
an initial initrd, and then mount the root file system in a read-only
fashion ...  Scripts in /etc/gedi.d are run in integer order to build
configuration files for network configuration, the InfiniBand srp_daemon
configuration, and the InfiniBand Subnet Manager ...  This robust and
repeatable image build process allows for rapid changes to both the
operating system and the Lustre software base."

The model:

* a boot pipeline (dhcp/tftp → initrd → read-only root → gedi.d scripts in
  integer order → services), with the ordering invariant the paper calls
  out: a service may start only after the scripts that build its
  configuration have run;
* a BCFG2-like desired-state store with convergence;
* the MTTR comparison behind the lesson: replacing a diskless node is a
  reboot into the golden image; replacing a diskful node is disk
  replacement + reinstall + config drift reconciliation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.engine import Engine
from repro.sim.resources import Server

__all__ = ["NodeState", "GediScript", "ServiceDef", "GediCluster", "diskful_mttr", "diskless_mttr"]


class NodeState(enum.Enum):
    """Stages of the netboot pipeline a server walks through."""

    OFF = "off"
    PXE = "pxe"
    INITRD = "initrd"
    ROOT_MOUNTED = "root-mounted"
    CONFIGURED = "configured"
    IN_SERVICE = "in-service"
    FAILED = "failed"


@dataclass(frozen=True)
class GediScript:
    """One /etc/gedi.d script: integer-ordered config builder."""

    order: int
    name: str
    builds: tuple[str, ...]  # config files it produces
    duration: float = 2.0


@dataclass(frozen=True)
class ServiceDef:
    """A service started by init, requiring config files to exist."""

    name: str
    requires: tuple[str, ...]
    start_duration: float = 3.0


DEFAULT_SCRIPTS = (
    GediScript(10, "network", ("ifcfg-ib0", "ifcfg-eth0")),
    GediScript(20, "srp_daemon", ("srp_daemon.conf",)),
    GediScript(30, "subnet-manager", ("opensm.conf",)),
    GediScript(40, "lustre", ("lustre.conf", "ldev.conf")),
)

DEFAULT_SERVICES = (
    ServiceDef("openibd", ("ifcfg-ib0",)),
    ServiceDef("srp_daemon", ("srp_daemon.conf",)),
    ServiceDef("lustre", ("lustre.conf", "ldev.conf")),
)


@dataclass
class _Node:
    name: str
    state: NodeState = NodeState.OFF
    configs_built: set[str] = field(default_factory=set)
    services_up: list[str] = field(default_factory=list)
    boot_finished_at: float | None = None
    config_generation: int = 0


class GediCluster:
    """A diskless cluster booting from one image server."""

    def __init__(
        self,
        engine: Engine,
        node_names: list[str],
        *,
        scripts: tuple[GediScript, ...] = DEFAULT_SCRIPTS,
        services: tuple[ServiceDef, ...] = DEFAULT_SERVICES,
        tftp_concurrency: int = 16,
        pxe_duration: float = 20.0,
        initrd_duration: float = 15.0,
        root_mount_duration: float = 10.0,
    ) -> None:
        if not node_names:
            raise ValueError("cluster needs nodes")
        if len(set(node_names)) != len(node_names):
            raise ValueError("duplicate node names")
        self.engine = engine
        self.scripts = tuple(sorted(scripts, key=lambda s: s.order))
        self.services = services
        self._check_ordering()
        self.nodes = {n: _Node(name=n) for n in node_names}
        self.boot_server = Server(engine, n_servers=tftp_concurrency, name="tftp")
        self.pxe_duration = pxe_duration
        self.initrd_duration = initrd_duration
        self.root_mount_duration = root_mount_duration
        self.image_generation = 1

    def _check_ordering(self) -> None:
        """The Lesson 7 invariant: every service's configs are produced by
        some script — and scripts run in integer order before services."""
        produced: set[str] = set()
        for script in self.scripts:
            produced |= set(script.builds)
        for service in self.services:
            missing = set(service.requires) - produced
            if missing:
                raise ValueError(
                    f"service {service.name!r} requires configs no gedi.d "
                    f"script builds: {sorted(missing)}"
                )

    # -- boot pipeline -----------------------------------------------------------

    def boot_node(self, name: str):
        """Start one node's boot; returns the engine process."""
        node = self.nodes[name]
        node.state = NodeState.PXE
        node.configs_built.clear()
        node.services_up.clear()
        node.boot_finished_at = None

        def _boot():
            # tftp/image download contends on the boot server.
            yield self.boot_server.submit(self.pxe_duration)
            node.state = NodeState.INITRD
            yield self.initrd_duration
            node.state = NodeState.ROOT_MOUNTED
            yield self.root_mount_duration
            # gedi.d scripts in integer order.
            for script in self.scripts:
                yield script.duration
                node.configs_built |= set(script.builds)
            node.state = NodeState.CONFIGURED
            node.config_generation = self.image_generation
            # Services start only once their configs exist.
            for service in self.services:
                missing = set(service.requires) - node.configs_built
                if missing:
                    node.state = NodeState.FAILED
                    return
                yield service.start_duration
                node.services_up.append(service.name)
            node.state = NodeState.IN_SERVICE
            node.boot_finished_at = self.engine.now

        return self.engine.process(_boot(), name=f"boot:{name}")

    def boot_all(self) -> None:
        for name in self.nodes:
            self.boot_node(name)

    def in_service(self) -> list[str]:
        return [n for n, node in self.nodes.items()
                if node.state is NodeState.IN_SERVICE]

    # -- configuration management (BCFG2-like) --------------------------------------

    def push_image_update(self) -> None:
        """A new golden image: bump the generation; convergence = reboot."""
        self.image_generation += 1

    def stale_nodes(self) -> list[str]:
        return [
            n for n, node in self.nodes.items()
            if node.state is NodeState.IN_SERVICE
            and node.config_generation < self.image_generation
        ]

    def converge(self) -> list[str]:
        """Reboot every stale node; returns their names."""
        stale = self.stale_nodes()
        for name in stale:
            self.boot_node(name)
        return stale


def diskless_mttr(cluster_boot_seconds: float = 90.0,
                  hardware_swap_seconds: float = 900.0) -> float:
    """MTTR for a failed diskless node: swap the blade, PXE-boot the
    golden image — no install, no state reconstruction."""
    return hardware_swap_seconds + cluster_boot_seconds


def diskful_mttr(
    hardware_swap_seconds: float = 900.0,
    os_install_seconds: float = 2700.0,
    config_restore_seconds: float = 1800.0,
    raid_rebuild_seconds: float = 7200.0,
) -> float:
    """MTTR for a stateful server: swap, reinstall, restore config, rebuild
    its local RAID — the cost structure diskless provisioning removes."""
    return (hardware_swap_seconds + os_install_seconds
            + config_restore_seconds + raid_rebuild_seconds)
