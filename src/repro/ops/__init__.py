"""Operational workflows: each module is one of the paper's lessons as
executable procedure — slow-disk culling (L13), performance QA with thin
file systems (L16), capacity planning and namespace balancing (L10),
procurement evaluation (L3/L5), diskless provisioning (L7), and the 2010
human-error incident replay (L11).
"""

from repro.ops.culling import CullingCampaign, CullingReport, envelope_metrics
from repro.ops.qa import ThinFilesystem, PerformanceQa
from repro.ops.capacity import Project, NamespacePlanner
from repro.ops.procurement import Rfp, VendorProposal, ProcurementEvaluation
from repro.ops.provisioning import GediCluster, NodeState
from repro.ops.incidents import IncidentOutcome, replay_2010_incident
from repro.ops.reliability import ReliabilitySim, ReliabilityReport, analytic_mttdl_years
from repro.ops.release_testing import CandidateRelease, ScaleTestCampaign, CampaignOutcome

__all__ = [
    "CullingCampaign",
    "CullingReport",
    "envelope_metrics",
    "ThinFilesystem",
    "PerformanceQa",
    "Project",
    "NamespacePlanner",
    "Rfp",
    "VendorProposal",
    "ProcurementEvaluation",
    "GediCluster",
    "NodeState",
    "IncidentOutcome",
    "replay_2010_incident",
    "ReliabilitySim",
    "ReliabilityReport",
    "analytic_mttdl_years",
    "CandidateRelease",
    "ScaleTestCampaign",
    "CampaignOutcome",
]
