"""Slow-disk identification and replacement: Lesson 13 as a workflow.

§V-A, verbatim targets this module reproduces:

* "Block-level benchmarks were run to ensure that the slowest RAID group
  performance over a single SSU was within the 5% of the fastest and
  across the 2,016 RAID groups the performance varied no more than the 5%
  of the average."
* "We conducted multiple rounds of these tests, eliminating the slowest
  performing disks at each round."
* "we replaced around 1,500 of 20,160 fully functioning, but slower,
  disks.  After deployment, the same process was repeated at the file
  system level and we eliminated approximately another 500 disks."
* "the initial requirement for 5% variability among RAID groups was
  determined to be prohibitive and was contractually adjusted to 7.5%."

Workflow per round (the paper's binning procedure):

1. measure every RAID group (block- or fs-level benchmark, with
   measurement noise);
2. bin groups by performance; take the groups violating the envelope;
3. within each offending group, pull per-disk service statistics and mark
   members materially slower than the population median;
4. replace those drives; re-measure.

Rounds repeat until the envelope holds or no drive can be blamed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spider import SpiderSystem
from repro.hardware.raid import group_bandwidths
from repro.sim.rng import RngStreams

__all__ = ["EnvelopeMetrics", "envelope_metrics", "RoundReport", "CullingReport", "CullingCampaign"]


@dataclass(frozen=True)
class EnvelopeMetrics:
    """The two §V-A variance criteria."""

    worst_intra_ssu_spread: float  # max over SSUs of 1 - slowest/fastest
    global_spread: float  # 1 - min/mean over all groups

    def within(self, threshold: float) -> bool:
        return (self.worst_intra_ssu_spread <= threshold
                and self.global_spread <= threshold)


def envelope_metrics(group_bw: np.ndarray, groups_per_ssu: int) -> EnvelopeMetrics:
    """Compute both variance criteria from per-group measurements."""
    group_bw = np.asarray(group_bw, dtype=float)
    if group_bw.ndim != 1 or len(group_bw) % groups_per_ssu != 0:
        raise ValueError("group_bw must be 1-D and divisible into SSUs")
    per_ssu = group_bw.reshape(-1, groups_per_ssu)
    intra = 1.0 - per_ssu.min(axis=1) / per_ssu.max(axis=1)
    global_spread = 1.0 - group_bw.min() / group_bw.mean()
    return EnvelopeMetrics(
        worst_intra_ssu_spread=float(intra.max()),
        global_spread=float(global_spread),
    )


@dataclass(frozen=True)
class RoundReport:
    """One cull round: what was replaced and the envelope before/after."""

    round_index: int
    level: str  # "block" | "fs"
    replaced: int
    metrics_before: EnvelopeMetrics
    metrics_after: EnvelopeMetrics


@dataclass
class CullingReport:
    """Outcome of a full campaign."""

    rounds: list[RoundReport] = field(default_factory=list)

    def replaced_at(self, level: str) -> int:
        return sum(r.replaced for r in self.rounds if r.level == level)

    @property
    def total_replaced(self) -> int:
        return sum(r.replaced for r in self.rounds)

    def final_metrics(self) -> EnvelopeMetrics:
        if not self.rounds:
            raise ValueError("no rounds run")
        return self.rounds[-1].metrics_after


class CullingCampaign:
    """The deployment-time culling process over a whole Spider system."""

    def __init__(
        self,
        system: SpiderSystem,
        *,
        threshold: float = 0.05,
        disk_blame_margin: float = 0.03,
        noise_sigma: float = 0.005,
        max_rounds: int = 12,
        bin_fraction: float = 0.2,
        seed: int = 42,
    ) -> None:
        if not (0 < threshold < 1):
            raise ValueError("threshold must be in (0, 1)")
        if not (0 < bin_fraction <= 1):
            raise ValueError("bin_fraction must be in (0, 1]")
        self.system = system
        self.threshold = threshold
        self.disk_blame_margin = disk_blame_margin
        self.noise_sigma = noise_sigma
        self.max_rounds = max_rounds
        self.bin_fraction = bin_fraction
        self._rng = RngStreams(seed).get("culling.measure")
        self._members = np.vstack([ssu.members_matrix for ssu in system.ssus])

    # -- measurement ------------------------------------------------------------

    def measure_groups(self, *, fs_level: bool) -> np.ndarray:
        """Benchmark every RAID group (noisy)."""
        disk_bw = self.system.population.bandwidths(fs_level=fs_level)
        bw = group_bandwidths(self._members, disk_bw,
                              self.system.spec.ssu.raid.n_data)
        noise = self._rng.normal(1.0, self.noise_sigma, size=len(bw))
        return bw * noise

    def _blame_disks(self, offending_groups: np.ndarray, *,
                     fs_level: bool) -> np.ndarray:
        """Per-disk service statistics for the offending groups: members
        materially below the healthy-population median get replaced."""
        disk_bw = self.system.population.bandwidths(fs_level=fs_level)
        median = float(np.median(disk_bw))
        cut = median * (1.0 - self.disk_blame_margin)
        members = self._members[offending_groups].ravel()
        slow = members[disk_bw[members] < cut]
        return np.unique(slow)

    # -- campaign ----------------------------------------------------------------

    def run_level(self, *, fs_level: bool,
                  report: CullingReport | None = None) -> CullingReport:
        """Run rounds at one level until the envelope holds."""
        report = report or CullingReport()
        level = "fs" if fs_level else "block"
        groups_per_ssu = self.system.spec.ssu.n_groups
        for round_index in range(self.max_rounds):
            bw = self.measure_groups(fs_level=fs_level)
            before = envelope_metrics(bw, groups_per_ssu)
            if before.within(self.threshold):
                break
            # Bin by performance; only the lowest bins are examined each
            # round ("disk level statistics were gathered from the lowest
            # performing set of groups"), restricted to envelope violators.
            per_ssu = bw.reshape(-1, groups_per_ssu)
            ssu_max = per_ssu.max(axis=1, keepdims=True)
            intra_bad = (per_ssu < (1 - self.threshold) * ssu_max).ravel()
            global_bad = bw < (1 - self.threshold) * bw.mean()
            violators = intra_bad | global_bad
            n_examined = max(1, int(len(bw) * self.bin_fraction))
            lowest_bins = np.zeros(len(bw), dtype=bool)
            lowest_bins[np.argsort(bw)[:n_examined]] = True
            offending = np.flatnonzero(violators & lowest_bins)
            victims = self._blame_disks(offending, fs_level=fs_level)
            if victims.size == 0:
                break  # variance not attributable to drives; stop
            self.system.population.replace(victims)
            after_bw = self.measure_groups(fs_level=fs_level)
            report.rounds.append(RoundReport(
                round_index=len(report.rounds),
                level=level,
                replaced=int(victims.size),
                metrics_before=before,
                metrics_after=envelope_metrics(after_bw, groups_per_ssu),
            ))
        return report

    def run_full_campaign(self) -> CullingReport:
        """The §V-A sequence: block-level rounds, then fs-level rounds."""
        report = self.run_level(fs_level=False)
        return self.run_level(fs_level=True, report=report)
