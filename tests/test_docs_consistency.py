"""Docs stay in lock-step with the code.

The drift these tests prevent is the kind this repo actually
accumulates: a new CLI subcommand that never makes it into the README
synopsis, or a new package missing from DESIGN.md's inventory.  CI runs
this module on every push (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent


def _cli_subcommands() -> list[str]:
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("spider-repro parser has no subparsers")


def _repro_packages() -> list[str]:
    src = REPO / "src" / "repro"
    return sorted(p.name for p in src.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def test_every_subcommand_in_readme_synopsis():
    readme = (REPO / "README.md").read_text()
    missing = [cmd for cmd in _cli_subcommands()
               if f"spider-repro {cmd}" not in readme]
    assert not missing, (
        f"README.md synopsis is missing subcommand(s) {missing}; "
        f"add a `spider-repro <cmd>` line to the CLI block")


def test_every_subcommand_in_cli_docstring():
    import repro.cli

    docstring = repro.cli.__doc__ or ""
    missing = [cmd for cmd in _cli_subcommands()
               if f"spider-repro {cmd}" not in docstring]
    assert not missing, (
        f"repro/cli.py module docstring is missing subcommand(s) {missing}")


def test_every_package_in_design_inventory():
    design = (REPO / "DESIGN.md").read_text()
    missing = [pkg for pkg in _repro_packages() if f"{pkg}/" not in design]
    assert not missing, (
        f"DESIGN.md §3 package inventory is missing package(s) {missing}")


def test_every_package_in_readme_tree():
    readme = (REPO / "README.md").read_text()
    missing = [pkg for pkg in _repro_packages() if f"{pkg}/" not in readme]
    assert not missing, (
        f"README.md \"What's inside\" tree is missing package(s) {missing}")


def test_sched_subsystem_documented_everywhere():
    """The multi-tenant scheduler is documented end to end: every
    sched/ module appears in DESIGN.md's inventory, and EXPERIMENTS.md
    carries the paired QoS-on/off ablation row that motivates it."""
    design = (REPO / "DESIGN.md").read_text()
    modules = sorted(p.name for p in (REPO / "src/repro/sched").glob("*.py")
                     if p.name != "__init__.py")
    missing = [m for m in modules if f"sched/{m}" not in design]
    assert not missing, (
        f"DESIGN.md §3 inventory is missing sched module(s) {missing}")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "spider-repro sched" in experiments, (
        "EXPERIMENTS.md must describe the multi-tenant QoS ablation "
        "driven by `spider-repro sched`")
    assert "| A14 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A14 multi-tenant row")


def test_resilience_subsystem_documented_everywhere():
    """The closed-loop remediation engine is documented end to end: every
    resilience/ module appears in DESIGN.md's inventory, and
    EXPERIMENTS.md carries the manual-vs-automated MTTR ablation row."""
    design = (REPO / "DESIGN.md").read_text()
    modules = sorted(
        p.name for p in (REPO / "src/repro/resilience").glob("*.py")
        if p.name != "__init__.py")
    missing = [m for m in modules if f"resilience/{m}" not in design]
    assert not missing, (
        f"DESIGN.md §3 inventory is missing resilience module(s) {missing}")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "spider-repro resilience" in experiments, (
        "EXPERIMENTS.md must describe the manual-vs-automated MTTR "
        "ablation driven by `spider-repro resilience`")
    assert "| A15 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A15 remediation row")


def test_overlay_subsystem_documented_everywhere():
    """The in-band monitoring overlay is documented end to end: every
    obs/overlay/ module appears in DESIGN.md's inventory, and
    EXPERIMENTS.md carries the observed-detection ablation row."""
    design = (REPO / "DESIGN.md").read_text()
    modules = sorted(
        p.name for p in (REPO / "src/repro/obs/overlay").glob("*.py")
        if p.name != "__init__.py")
    missing = [m for m in modules if f"obs/overlay/{m}" not in design]
    assert not missing, (
        f"DESIGN.md §3 inventory is missing overlay module(s) {missing}")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "spider-repro monitor" in experiments, (
        "EXPERIMENTS.md must describe the observed-detection ablation "
        "driven by `spider-repro monitor`")
    assert "| A16 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A16 overlay row")

    readme = (REPO / "README.md").read_text()
    assert "spider-repro monitor" in readme, (
        "README.md CLI synopsis lost the monitor subcommand")
    assert "obs/overlay/" in readme, (
        "README.md package tree lost the obs/overlay entry")


def test_metatier_subsystem_documented_everywhere():
    """The small-file metadata tier is documented end to end: every
    metatier/ module appears in DESIGN.md's inventory, EXPERIMENTS.md
    carries the A18 paired-study ablation row, README documents the
    subcommand and package, and docs/PERFORMANCE.md describes the
    BENCH_meta.json gate."""
    design = (REPO / "DESIGN.md").read_text()
    modules = sorted(
        p.name for p in (REPO / "src/repro/metatier").glob("*.py")
        if p.name != "__init__.py")
    missing = [m for m in modules if f"metatier/{m}" not in design]
    assert not missing, (
        f"DESIGN.md §3 inventory is missing metatier module(s) {missing}")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "spider-repro meta" in experiments, (
        "EXPERIMENTS.md must describe the small-file tier paired study "
        "driven by `spider-repro meta`")
    assert "| A18 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A18 metadata-tier row")

    readme = (REPO / "README.md").read_text()
    assert "spider-repro meta" in readme, (
        "README.md CLI synopsis lost the meta subcommand")
    assert "metatier/" in readme, (
        "README.md package tree lost the metatier entry")

    performance = (REPO / "docs" / "PERFORMANCE.md").read_text()
    assert "BENCH_meta.json" in performance, (
        "docs/PERFORMANCE.md must describe the BENCH_meta.json gate")


def test_routing_subsystem_documented_everywhere():
    """Congestion-aware routing is documented end to end: every
    network/ module appears in DESIGN.md's inventory, EXPERIMENTS.md
    carries the A19 storm-study ablation row, README documents the
    subcommand and the routing section, and docs/PERFORMANCE.md
    describes the BENCH_routing.json gate."""
    design = (REPO / "DESIGN.md").read_text()
    modules = sorted(
        p.name for p in (REPO / "src/repro/network").glob("*.py")
        if p.name != "__init__.py")
    missing = [m for m in modules if f"network/{m}" not in design]
    assert not missing, (
        f"DESIGN.md §3 inventory is missing network module(s) {missing}")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "spider-repro storm" in experiments, (
        "EXPERIMENTS.md must describe the hot-spot storm study "
        "driven by `spider-repro storm`")
    assert "| A19 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A19 storm row")

    readme = (REPO / "README.md").read_text()
    assert "spider-repro storm" in readme, (
        "README.md CLI synopsis lost the storm subcommand")
    assert "flowlet" in readme, (
        "README.md lost the congestion-aware routing section")

    performance = (REPO / "docs" / "PERFORMANCE.md").read_text()
    assert "BENCH_routing.json" in performance, (
        "docs/PERFORMANCE.md must describe the BENCH_routing.json gate")


def test_incremental_solver_documented_everywhere():
    """The incremental flow solver's performance contract is documented
    end to end: docs/PERFORMANCE.md names every resolve-path counter and
    every checked-in BENCH_*.json record, README links the doc, DESIGN.md
    carries the §9 correctness argument, and EXPERIMENTS.md carries the
    before/after throughput ablation row."""
    from repro.core.flow import RESOLVE_COUNTERS

    performance = (REPO / "docs" / "PERFORMANCE.md").read_text()
    missing = [c for c in RESOLVE_COUNTERS if c not in performance]
    assert not missing, (
        f"docs/PERFORMANCE.md is missing resolve counter(s) {missing}; "
        f"keep the cost-model table in step with RESOLVE_COUNTERS")

    bench_files = sorted(p.name for p in REPO.glob("BENCH_*.json"))
    assert bench_files, "no BENCH_*.json regression records at repo root"
    undocumented = [b for b in bench_files if b not in performance]
    assert not undocumented, (
        f"docs/PERFORMANCE.md does not describe benchmark record(s) "
        f"{undocumented}; extend the BENCH_*.json table")

    readme = (REPO / "README.md").read_text()
    assert "docs/PERFORMANCE.md" in readme, (
        "README.md lost the link to docs/PERFORMANCE.md")

    design = (REPO / "DESIGN.md").read_text()
    assert "## 9. Incremental flow solving" in design, (
        "DESIGN.md lost the §9 incremental-solving correctness argument")

    experiments = (REPO / "EXPERIMENTS.md").read_text()
    assert "| A17 |" in experiments, (
        "EXPERIMENTS.md ablation table lost the A17 incremental-solver row")


def test_deep_lint_documented_everywhere():
    """Deep mode is documented end to end: README and DESIGN.md describe
    the --deep pass, and the 60 s wall-clock budget is the same number in
    the test suite, the CI job, and docs/PERFORMANCE.md."""
    import re

    deep_tests = (REPO / "tests" / "test_lint_deep.py").read_text()
    match = re.search(r"^DEEP_BUDGET_SECONDS = (\d+(?:\.\d+)?)$",
                      deep_tests, re.M)
    assert match, "tests/test_lint_deep.py lost DEEP_BUDGET_SECONDS"
    budget = int(float(match.group(1)))

    readme = (REPO / "README.md").read_text()
    assert "spider-repro lint --deep" in readme, (
        "README.md CLI synopsis lost the `lint --deep` line")

    design = (REPO / "DESIGN.md").read_text()
    assert "--deep" in design, (
        "DESIGN.md §8 lost the deep-mode description")

    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "lint-deep:" in ci, "ci.yml lost the blocking lint-deep job"
    assert f"timeout {budget} " in ci, (
        f"ci.yml lint-deep job must enforce the documented {budget} s "
        f"budget with `timeout {budget}`")

    performance = (REPO / "docs" / "PERFORMANCE.md").read_text()
    assert f"**{budget} seconds**" in performance, (
        f"docs/PERFORMANCE.md §6 must document the {budget} s deep-lint "
        f"budget; keep it in step with DEEP_BUDGET_SECONDS and ci.yml")


def _registered_lint_rules() -> set[str]:
    import repro.lint

    return {rule.rule_id for rule in repro.lint.all_rules()}


def test_every_lint_rule_in_docs():
    # Forward direction: registering a rule obliges documenting it.
    rules = _registered_lint_rules()
    for doc in ("DESIGN.md", "README.md"):
        text = (REPO / doc).read_text()
        missing = sorted(r for r in rules if f"`{r}`" not in text)
        assert not missing, (
            f"{doc} does not mention lint rule(s) {missing}; "
            f"extend the spider-lint section")


def test_design_rule_table_matches_registry():
    # Reverse direction: the DESIGN.md §8 table may not document rules
    # that no longer exist (nor miss ones that do).
    import re

    design = (REPO / "DESIGN.md").read_text()
    documented = set(re.findall(r"^\| `([a-z][a-z-]*)` \|", design, re.M))
    rules = _registered_lint_rules()
    assert documented == rules, (
        "DESIGN.md §8 rule table is out of step with the registry: "
        f"stale={sorted(documented - rules)}, "
        f"undocumented={sorted(rules - documented)}")
