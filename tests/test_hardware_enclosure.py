"""Enclosure geometry tests: the Lesson 11 design metric."""

import numpy as np
import pytest

from repro.hardware.enclosure import EnclosureGroup


class TestGeometry:
    def test_five_shelf_design_two_members_per_shelf(self):
        g = EnclosureGroup(n_enclosures=5, disks_per_enclosure=56, raid_width=10)
        assert g.n_groups == 28
        for group in range(g.n_groups):
            counts = g.members_per_enclosure(group)
            assert set(counts.values()) == {2}
        assert g.max_members_lost_per_enclosure() == 2

    def test_ten_shelf_design_one_member_per_shelf(self):
        g = EnclosureGroup(n_enclosures=10, disks_per_enclosure=28, raid_width=10)
        assert g.n_groups == 28
        for group in range(g.n_groups):
            assert set(g.members_per_enclosure(group).values()) == {1}
        assert g.max_members_lost_per_enclosure() == 1

    def test_all_slots_assigned_exactly_once(self):
        g = EnclosureGroup(n_enclosures=5, disks_per_enclosure=20, raid_width=10)
        all_members = [d for members in g.group_members for d in members]
        assert sorted(all_members) == list(range(100))
        assert sorted(g.all_disk_indices().tolist()) == list(range(100))

    def test_first_disk_index_offsets(self):
        g = EnclosureGroup(5, 20, raid_width=10, first_disk_index=1000)
        assert g.all_disk_indices().min() == 1000
        assert g.all_disk_indices().max() == 1099

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            EnclosureGroup(n_enclosures=3, disks_per_enclosure=7, raid_width=10)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            EnclosureGroup(0, 10)
        with pytest.raises(ValueError):
            EnclosureGroup(5, 10, raid_width=0)


class TestOutage:
    def test_offline_enclosure_reports_members(self):
        g = EnclosureGroup(5, 20, raid_width=10)
        g.set_enclosure_online(2, False)
        for group in range(g.n_groups):
            lost = g.unavailable_members(group)
            assert len(lost) == 2
            for pos in lost:
                assert g.member_enclosure[group][pos] == 2

    def test_online_again(self):
        g = EnclosureGroup(5, 20, raid_width=10)
        g.set_enclosure_online(2, False)
        g.set_enclosure_online(2, True)
        assert g.unavailable_members(0) == []
