"""repro.faults: taxonomy, plans, injectors, and campaign determinism."""

from __future__ import annotations

import math

import pytest

from repro.core.spider import SpiderSystem
from repro.faults import (
    INJECTORS,
    FaultCampaign,
    FaultClass,
    FaultPlan,
    PlannedFault,
    cable_failure_scenario,
    incident_2010_scenario,
    injector_for,
)
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.trace import Tracer, read_chrome_trace, use_tracer
from tests.conftest import mini_spec


def fresh_system() -> SpiderSystem:
    """Campaigns mutate the system in place — one per campaign."""
    return SpiderSystem(mini_spec(), seed=7)


def run_random(*, n_faults=6, seed=11, duration=40_000.0):
    system = fresh_system()
    plan = FaultPlan.random(system, duration=duration,
                            n_faults=n_faults, seed=seed)
    return FaultCampaign(system, plan, duration=duration).run()


class TestPlannedFault:
    def test_rejects_negative_time_and_zero_duration(self):
        with pytest.raises(ValueError):
            PlannedFault(time=-1.0, fault=FaultClass.DISK_FAIL, target=0)
        with pytest.raises(ValueError):
            PlannedFault(time=0.0, fault=FaultClass.DISK_FAIL, target=0,
                         duration=0.0)

    def test_label_and_repair_time(self):
        f = PlannedFault(time=10.0, fault=FaultClass.CABLE_FAIL,
                         target="oss00a", duration=50.0)
        assert f.label == "cable_fail:oss00a"
        assert f.repair_time == 60.0

    def test_permanent_fault_never_repairs(self):
        f = PlannedFault(time=0.0, fault=FaultClass.CONTROLLER_FAIL, target=0)
        assert math.isinf(f.repair_time)


class TestFaultPlan:
    def test_random_is_seed_deterministic(self):
        system = fresh_system()
        p1 = FaultPlan.random(system, duration=86_400, n_faults=8, seed=3)
        p2 = FaultPlan.random(system, duration=86_400, n_faults=8, seed=3)
        p3 = FaultPlan.random(system, duration=86_400, n_faults=8, seed=4)
        assert p1 == p2
        assert p1 != p3

    def test_random_is_sorted_and_sized(self):
        plan = FaultPlan.random(fresh_system(), duration=86_400,
                                n_faults=8, seed=3)
        assert len(plan) == 8
        times = [f.time for f in plan]
        assert times == sorted(times)
        assert all(0 <= f.time <= 86_400 for f in plan)

    def test_compose_and_shift(self):
        system = fresh_system()
        cable = cable_failure_scenario(system)
        shifted = cable.shift(1000.0)
        assert shifted.end == cable.end + 1000.0
        both = cable + shifted
        assert len(both) == len(cable) + len(shifted)
        assert [f.time for f in both] == sorted(f.time for f in both)

    def test_scenarios_build(self):
        system = fresh_system()
        assert len(cable_failure_scenario(system)) == 2
        assert len(incident_2010_scenario(system)) == 3


class TestInjectors:
    def test_registry_covers_every_fault_class(self):
        assert set(INJECTORS) == set(FaultClass)
        for cls, injector in INJECTORS.items():
            assert injector.fault_class is cls

    def test_disk_fail_roundtrip_restores_bandwidth(self):
        system = fresh_system()
        before = system.aggregate_bandwidth(fs_level=True)
        fault = PlannedFault(time=0.0, fault=FaultClass.DISK_FAIL, target=0)
        injector = injector_for(fault)
        token = injector.inject(system, fault)
        assert system.aggregate_bandwidth(fs_level=True) <= before
        followup = injector.repair(system, fault, token)
        assert followup is not None
        delay, finish = followup
        assert delay > 0
        finish()  # rebuild completes
        assert system.aggregate_bandwidth(fs_level=True) == pytest.approx(before)

    def test_controller_fail_halves_couplet_cap(self):
        system = fresh_system()
        couplet = system.ssus[0].couplet
        healthy = couplet.bw_cap(fs_level=True)
        fault = PlannedFault(time=0.0, fault=FaultClass.CONTROLLER_FAIL,
                             target=0)
        injector = injector_for(fault)
        token = injector.inject(system, fault)
        assert couplet.bw_cap(fs_level=True) < healthy
        injector.repair(system, fault, token)
        assert couplet.bw_cap(fs_level=True) == pytest.approx(healthy)

    def test_router_fail_goes_offline_and_back(self):
        system = fresh_system()
        name = system.routers[0].name
        fault = PlannedFault(time=0.0, fault=FaultClass.ROUTER_FAIL,
                             target=name)
        injector = injector_for(fault)
        token = injector.inject(system, fault)
        assert not system.lnet.router_online(name)
        injector.repair(system, fault, token)
        assert system.lnet.router_online(name)


class TestCampaign:
    def test_same_seed_gives_equal_results(self):
        assert run_random() == run_random()

    def test_different_seed_differs(self):
        assert run_random(seed=11) != run_random(seed=12)

    def test_telemetry_on_off_is_bit_identical(self):
        result_off = run_random()
        telemetry, tracer = Telemetry(), Tracer()
        with use_telemetry(telemetry), use_tracer(tracer):
            result_on = run_random()
        assert result_off == result_on

    def test_metrics_are_sane(self):
        result = run_random()
        assert result.n_injected == 6
        assert result.n_repaired <= result.n_injected
        assert 0 < result.worst_bw <= result.baseline_bw
        assert 0 < result.availability <= 1.0
        assert result.timeline[0][2] == "baseline"
        assert 0.0 <= result.below_threshold_fraction() <= 1.0

    def test_cable_scenario_degrades_then_recovers(self):
        system = fresh_system()
        result = FaultCampaign(system, cable_failure_scenario(system)).run()
        assert result.worst_bw < result.baseline_bw
        assert result.final_bw == pytest.approx(result.baseline_bw)
        assert result.recovery_times  # both classes measured

    def test_every_injected_fault_reaches_the_health_checker(self):
        system = fresh_system()
        plan = FaultPlan.random(system, duration=40_000.0,
                                n_faults=6, seed=11)
        campaign = FaultCampaign(system, plan, duration=40_000.0)
        campaign.run()
        details = {e.detail for e in campaign.health.events}
        missing = [f.label for f in plan if f.label not in details]
        assert not missing
        # Blackout-class faults also produce a correlated incident.
        assert campaign.health.incidents()

    def test_spans_and_counters_reach_the_exported_trace(self, tmp_path):
        telemetry, tracer = Telemetry(), Tracer()
        with use_telemetry(telemetry), use_tracer(tracer):
            result = run_random()
        fault_spans = [s for s in tracer.spans if s.cat == "faults"]
        assert len(fault_spans) == result.n_injected
        assert all(s.name.startswith("fault:") for s in fault_spans)
        injected = [c for c in telemetry.counters()
                    if c.name == "faults.injected"]
        assert sum(c.value for c in injected) == result.n_injected

        path = tmp_path / "chaos.json"
        tracer.write_chrome_trace(path, telemetry=telemetry)
        data = read_chrome_trace(path)
        names = {e["name"] for e in data["traceEvents"]
                 if e.get("cat") == "faults"}
        assert any(n.startswith("fault:") for n in names)
        snapshot_names = {c["name"] for c in data["telemetry"]["counters"]}
        assert {"faults.injected", "faults.repaired"} <= snapshot_names

    def test_rejects_clientless_system(self):
        system = SpiderSystem(mini_spec(), seed=7, build_clients=False)
        plan = FaultPlan(())
        with pytest.raises(ValueError):
            FaultCampaign(system, plan, duration=10.0)

    def test_rejects_bad_threshold(self):
        system = fresh_system()
        with pytest.raises(ValueError):
            FaultCampaign(system, FaultPlan(()), duration=10.0, threshold=1.5)
