"""Property-based tests of the max-min solver: feasibility, demand
boundedness, and the max-min (bottleneck) characterization on random
networks."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.flow import FlowNetwork

_EPS = 1e-6


@st.composite
def random_network(draw):
    n_comp = draw(st.integers(1, 8))
    caps = [draw(st.floats(0.5, 100.0)) for _ in range(n_comp)]
    n_flows = draw(st.integers(1, 12))
    flows = []
    for i in range(n_flows):
        path_len = draw(st.integers(1, min(4, n_comp)))
        path = draw(st.permutations(range(n_comp)))[:path_len]
        demand = draw(st.one_of(st.just(math.inf), st.floats(0.1, 50.0)))
        weight = draw(st.floats(0.5, 3.0))
        flows.append((f"f{i}", list(path), demand, weight))
    return caps, flows


def build(caps, flows):
    net = FlowNetwork()
    for i, c in enumerate(caps):
        net.add_component(str(i), c)
    for name, path, demand, weight in flows:
        net.add_flow(name, [str(p) for p in path], demand=demand, weight=weight)
    return net


@given(random_network())
@settings(max_examples=200, deadline=None)
def test_feasibility_and_demand_bounds(nw):
    caps, flows = nw
    res = build(caps, flows).solve()
    # Feasibility: no component overloaded.
    for i, cap in enumerate(caps):
        assert res.component_load[str(i)] <= cap * (1 + _EPS) + _EPS
    # Demand bounds and non-negativity.
    for (name, _path, demand, _w), rate in zip(flows, res.rates):
        assert rate >= -_EPS
        if math.isfinite(demand):
            assert rate <= demand * (1 + _EPS) + _EPS


@given(random_network())
@settings(max_examples=200, deadline=None)
def test_maxmin_every_flow_is_limited(nw):
    """Pareto/max-min: every flow either meets its demand or crosses a
    saturated component — no rate can be raised unilaterally."""
    caps, flows = nw
    res = build(caps, flows).solve()
    saturated = set(res.saturated_components(tol=1e-4))
    for (name, path, demand, _w), rate in zip(flows, res.rates):
        demand_met = math.isfinite(demand) and rate >= demand * (1 - 1e-4) - _EPS
        crosses_saturated = any(str(p) in saturated for p in path)
        assert demand_met or crosses_saturated, (
            f"flow {name} rate {rate} is limited by nothing"
        )


@given(random_network())
@settings(max_examples=100, deadline=None)
def test_deterministic(nw):
    caps, flows = nw
    r1 = build(caps, flows).solve()
    r2 = build(caps, flows).solve()
    assert np.allclose(r1.rates, r2.rates, equal_nan=True)


@given(st.integers(1, 30), st.floats(1.0, 1000.0))
@settings(max_examples=50, deadline=None)
def test_single_bottleneck_exact_fairness(n_flows, cap):
    net = FlowNetwork()
    net.add_component("c", cap)
    for i in range(n_flows):
        net.add_flow(f"f{i}", ["c"])
    res = net.solve()
    assert np.allclose(res.rates, cap / n_flows, rtol=1e-9)


@given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=10))
@settings(max_examples=50, deadline=None)
def test_total_bounded_by_sum_of_demands(demands):
    net = FlowNetwork()
    net.add_component("c", 1e6)
    for i, d in enumerate(demands):
        net.add_flow(f"f{i}", ["c"], demand=d)
    res = net.solve()
    assert res.total == pytest_approx(sum(demands))


def pytest_approx(x, rel=1e-6):
    import pytest
    return pytest.approx(x, rel=rel)
