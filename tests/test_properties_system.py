"""System-level property tests: solver monotonicity, namespace operation
sequences, and routing-policy invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flow import FlowNetwork
from repro.lustre.namespace import Namespace, NamespaceError, StripeLayout
from repro.network.infiniband import FabricSpec, InfinibandFabric
from repro.network.lnet import FineGrainedRouting, LnetConfig, RouterInfo
from repro.network.torus import Torus3D, TorusSpec


class TestFlowMonotonicity:
    @st.composite
    def network_and_bump(draw):
        n_comp = draw(st.integers(1, 6))
        caps = [draw(st.floats(1.0, 50.0)) for _ in range(n_comp)]
        n_flows = draw(st.integers(1, 8))
        flows = []
        for i in range(n_flows):
            k = draw(st.integers(1, n_comp))
            path = draw(st.permutations(range(n_comp)))[:k]
            flows.append((f"f{i}", list(path)))
        bump_index = draw(st.integers(0, n_comp - 1))
        bump = draw(st.floats(0.5, 20.0))
        return caps, flows, bump_index, bump

    @staticmethod
    def _solve(caps, flows):
        net = FlowNetwork()
        for i, c in enumerate(caps):
            net.add_component(str(i), c)
        for name, path in flows:
            net.add_flow(name, [str(p) for p in path])
        return net.solve()

    @given(network_and_bump())
    @settings(max_examples=150, deadline=None)
    def test_adding_capacity_lexicographically_improves(self, case):
        """Raising one layer's capacity lex-improves the sorted rate
        vector (the max-min optimality theorem).

        Note the *total* is deliberately NOT asserted monotone: max-min
        fairness trades efficiency for fairness, and hypothesis finds
        counterexamples where extra capacity lowers aggregate throughput
        (e.g. caps [1,3,3,1], flows [1], [1,2,3], [2], bumping the last
        cap: total 5.0 → 4.5).  The fairness-efficiency tension is real
        in production PFS schedulers too.
        """
        caps, flows, bump_index, bump = case
        before = np.sort(self._solve(caps, flows).rates)
        bumped = list(caps)
        bumped[bump_index] += bump
        after = np.sort(self._solve(bumped, flows).rates)
        # Lexicographic comparison with float slack.
        for b, a in zip(before, after):
            if a > b + 1e-6:
                break  # strictly better at the first difference
            assert a >= b - 1e-6

    @given(network_and_bump())
    @settings(max_examples=100, deadline=None)
    def test_adding_a_flow_never_reduces_total(self, case):
        """Work conservation: an extra flow can only add throughput."""
        caps, flows, bump_index, _bump = case
        before = self._solve(caps, flows).total
        extra = flows + [("extra", [bump_index])]
        after = self._solve(caps, extra).total
        assert after >= before - 1e-6


class TestNamespaceOperationSequences:
    @given(st.lists(
        st.tuples(st.integers(0, 11), st.booleans()),  # (file id, delete?)
        min_size=1, max_size=60,
    ))
    @settings(max_examples=150, deadline=None)
    def test_counts_and_membership_consistent(self, ops):
        ns = Namespace()
        layout = StripeLayout(osts=(0,))
        live = set()
        for i, (fid, delete) in enumerate(ops):
            path = f"/f{fid}"
            if delete:
                if path in live:
                    ns.unlink(path)
                    live.discard(path)
                else:
                    with pytest.raises(NamespaceError):
                        ns.unlink(path)
            else:
                if path in live:
                    with pytest.raises(NamespaceError):
                        ns.create(path, layout, now=float(i))
                else:
                    ns.create(path, layout, now=float(i))
                    live.add(path)
            assert ns.n_files == len(live)
        walked = {e.path for e in ns.files()}
        assert walked == live

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=10, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_walk_yields_each_entry_once(self, fids):
        ns = Namespace()
        ns.mkdir("/d")
        layout = StripeLayout(osts=(0,))
        for fid in fids:
            ns.create(f"/d/f{fid}", layout)
        paths = [e.path for e in ns.walk()]
        assert len(paths) == len(set(paths))
        assert len(paths) == 2 + len(fids)  # root + /d + files


class TestFgrProperties:
    @st.composite
    def lnet_case(draw):
        dims = draw(st.tuples(st.integers(3, 8), st.integers(3, 8),
                              st.integers(3, 8)))
        n_routers = draw(st.integers(2, 10))
        n_leaves = draw(st.integers(1, 3))
        torus = Torus3D(TorusSpec(dims=dims))
        fabric = InfinibandFabric(FabricSpec(n_leaf_switches=n_leaves))
        routers = []
        for i in range(n_routers):
            coord = tuple(draw(st.integers(0, d - 1)) for d in dims)
            leaf = draw(st.integers(0, n_leaves - 1))
            routers.append(RouterInfo(f"r{i}", coord, leaf))
        for r in routers:
            fabric.attach_host(r.name, r.leaf)
        # Ensure every leaf has at least one router.
        present = {r.leaf for r in routers}
        client = tuple(draw(st.integers(0, d - 1)) for d in dims)
        leaf = draw(st.sampled_from(sorted(present)))
        slack = draw(st.integers(0, 6))
        return LnetConfig(torus, fabric, routers), client, leaf, slack

    @given(lnet_case())
    @settings(max_examples=150, deadline=None)
    def test_selection_is_leaf_matched_and_within_slack(self, case):
        config, client, leaf, slack = case
        policy = FineGrainedRouting(config, slack=slack)
        router = policy.select_router(client, leaf)
        assert router.leaf == leaf
        candidates = [r for r in config.routers if r.leaf == leaf]
        best = min(config.torus.distance(client, r.coord)
                   for r in candidates)
        assert config.torus.distance(client, router.coord) <= best + slack

    @given(lnet_case())
    @settings(max_examples=60, deadline=None)
    def test_repeated_selection_balances(self, case):
        """Across many selections for one (client, leaf), no candidate in
        the zone is left idle while another carries 2+ more flows."""
        config, client, leaf, slack = case
        policy = FineGrainedRouting(config, slack=slack)
        for _ in range(24):
            policy.select_router(client, leaf)
        candidates = [i for i, r in enumerate(config.routers)
                      if r.leaf == leaf]
        best = min(config.torus.distance(client, config.routers[i].coord)
                   for i in candidates)
        zone = [i for i in candidates
                if config.torus.distance(client, config.routers[i].coord)
                <= best + slack]
        loads = [int(policy._load[i]) for i in zone]
        assert max(loads) - min(loads) <= 1
