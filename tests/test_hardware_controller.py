"""Controller couplet tests: caps, failover, the 2014 upgrade."""

import numpy as np
import pytest

from repro.hardware.controller import ControllerCouplet, ControllerSpec
from repro.units import GB


class TestSpec:
    def test_default_caps_ordering(self):
        spec = ControllerSpec()
        assert spec.fs_bw_cap < spec.block_bw_cap
        assert spec.fs_bw_cap < spec.upgraded_fs_bw_cap

    def test_fs_cap_cannot_exceed_block(self):
        with pytest.raises(ValueError):
            ControllerSpec(block_bw_cap=1 * GB, fs_bw_cap=2 * GB,
                           upgraded_fs_bw_cap=2 * GB)

    def test_spider2_namespace_calibration(self):
        # 18 couplets per namespace: 320 GB/s pre-, ~510 GB/s post-upgrade.
        spec = ControllerSpec()
        pre = 18 * 2 * spec.fs_bw_cap
        post = 18 * 2 * spec.upgraded_fs_bw_cap
        assert pre == pytest.approx(320 * GB, rel=0.02)
        assert post == pytest.approx(510 * GB, rel=0.02)


class TestCouplet:
    def test_even_home_split(self):
        c = ControllerCouplet(n_groups=56)
        assert (c.group_owner == np.arange(56) % 2).all()

    def test_caps_sum_both_controllers(self):
        spec = ControllerSpec()
        c = ControllerCouplet(spec)
        assert c.bw_cap(fs_level=False) == pytest.approx(2 * spec.block_bw_cap)
        assert c.bw_cap(fs_level=True) == pytest.approx(2 * spec.fs_bw_cap)

    def test_upgrade_raises_fs_cap_only(self):
        spec = ControllerSpec()
        c = ControllerCouplet(spec)
        block_before = c.bw_cap(fs_level=False)
        c.upgrade()
        assert c.bw_cap(fs_level=True) == pytest.approx(2 * spec.upgraded_fs_bw_cap)
        assert c.bw_cap(fs_level=False) == block_before

    def test_failover_moves_groups(self):
        c = ControllerCouplet(n_groups=8)
        c.fail_controller(0)
        assert (c.group_owner == 1).all()
        assert c.online
        assert c.bw_cap(fs_level=True) == pytest.approx(c.spec.fs_bw_cap)

    def test_failback(self):
        c = ControllerCouplet(n_groups=8)
        c.fail_controller(0)
        c.restore_controller(0)
        assert (c.group_owner == c.home_owner).all()

    def test_double_failure_kills_couplet(self):
        c = ControllerCouplet(n_groups=4)
        c.fail_controller(0)
        c.fail_controller(1)
        assert not c.online
        assert c.bw_cap(fs_level=False) == 0.0
        assert (c.group_share_caps(fs_level=False) == 0).all()

    def test_group_share_caps_fair(self):
        spec = ControllerSpec()
        c = ControllerCouplet(spec, n_groups=8)
        caps = c.group_share_caps(fs_level=True)
        assert caps.shape == (8,)
        # each controller owns 4 groups
        assert np.allclose(caps, spec.fs_bw_cap / 4)

    def test_group_share_caps_after_failover(self):
        spec = ControllerSpec()
        c = ControllerCouplet(spec, n_groups=8)
        c.fail_controller(1)
        caps = c.group_share_caps(fs_level=True)
        assert np.allclose(caps, spec.fs_bw_cap / 8)

    def test_counters_record(self):
        c = ControllerCouplet(n_groups=4)
        c.record_io(10 * 2**20, write=True, request_size=2**20)
        c.record_io(2**20, write=False, request_size=2**20)
        ctrl = c.controllers[0]
        assert ctrl.counters.write_bytes == 10 * 2**20
        assert ctrl.counters.read_bytes == 2**20
        assert ctrl.counters.write_requests == 10
        assert ctrl.counters.request_size_hist[2**20] == 2

    def test_counters_skip_dead_controller(self):
        c = ControllerCouplet(n_groups=4)
        c.fail_controller(0)
        c.record_io(100, write=True, request_size=100)
        assert c.controllers[0].counters.write_bytes == 0
        assert c.controllers[1].counters.write_bytes == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerCouplet(n_groups=0)
