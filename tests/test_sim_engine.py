"""Discrete-event engine tests: ordering, processes, composition."""

import math

import pytest

from repro.sim.engine import Engine, Event, SimulationError


class TestScheduling:
    def test_call_at_runs_in_time_order(self):
        engine = Engine()
        log = []
        engine.call_at(5.0, lambda: log.append("b"))
        engine.call_at(1.0, lambda: log.append("a"))
        engine.call_at(9.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_equal_timestamps_fifo(self):
        engine = Engine()
        log = []
        for i in range(5):
            engine.call_at(3.0, lambda i=i: log.append(i))
        engine.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.call_at(10.0, lambda: engine.call_at(5.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_run_until_bounds_time(self):
        engine = Engine()
        log = []
        engine.call_at(1.0, lambda: log.append(1))
        engine.call_at(100.0, lambda: log.append(100))
        engine.run(until=10.0)
        assert log == [1]
        assert engine.now == 10.0
        engine.run()
        assert log == [1, 100]

    def test_peek(self):
        engine = Engine()
        assert math.isinf(engine.peek())
        engine.call_at(4.0, lambda: None)
        assert engine.peek() == 4.0

    def test_max_events_guard(self):
        engine = Engine()

        def respawn():
            engine.call_after(0.0, respawn)

        engine.call_after(0.0, respawn)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestEvents:
    def test_trigger_delivers_value(self):
        engine = Engine()
        ev = engine.event("x")
        got = []
        ev.on_trigger(lambda e: got.append(e.value))
        ev.trigger(42)
        assert got == [42]
        assert ev.time == 0.0

    def test_late_subscriber_fires_immediately(self):
        engine = Engine()
        ev = engine.event()
        ev.trigger("done")
        got = []
        ev.on_trigger(lambda e: got.append(e.value))
        assert got == ["done"]

    def test_double_trigger_rejected(self):
        engine = Engine()
        ev = engine.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_timeout(self):
        engine = Engine()
        ev = engine.timeout(7.5, value="t")
        engine.run()
        assert ev.triggered and ev.value == "t" and ev.time == 7.5

    def test_all_of_collects_in_order(self):
        engine = Engine()
        evs = [engine.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        combined = engine.all_of(evs)
        engine.run()
        assert combined.value == [3.0, 1.0, 2.0]
        assert combined.time == 3.0

    def test_all_of_empty_fires_now(self):
        engine = Engine()
        combined = engine.all_of([])
        assert combined.triggered and combined.value == []


class TestProcesses:
    def test_process_sleeps(self):
        engine = Engine()
        marks = []

        def proc():
            marks.append(engine.now)
            yield 2.5
            marks.append(engine.now)
            yield 2.5
            marks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert marks == [0.0, 2.5, 5.0]

    def test_process_waits_on_event(self):
        engine = Engine()
        gate = engine.event("gate")
        got = []

        def waiter():
            value = yield gate
            got.append((engine.now, value))

        engine.process(waiter())
        engine.call_at(4.0, lambda: gate.trigger("open"))
        engine.run()
        assert got == [(4.0, "open")]

    def test_process_return_value_on_done(self):
        engine = Engine()

        def proc():
            yield 1.0
            return "result"

        p = engine.process(proc())
        engine.run()
        assert p.done.triggered and p.done.value == "result"

    def test_invalid_yield_raises(self):
        engine = Engine()

        def bad():
            yield "nope"

        engine.process(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_delay_raises(self):
        engine = Engine()

        def bad():
            yield -1.0

        engine.process(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_every_periodic(self):
        engine = Engine()
        ticks = []
        engine.every(10.0, lambda: ticks.append(engine.now))
        engine.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_with_start(self):
        engine = Engine()
        ticks = []
        engine.every(10.0, lambda: ticks.append(engine.now), start=5.0)
        engine.run(until=26.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_every_rejects_nonpositive_interval(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.every(0.0, lambda: None)
