"""Purge engine tests: the 14-day policy and its invariants."""

import pytest

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.tools.purger import Purger
from repro.units import DAY, MiB, TB


@pytest.fixture
def fs():
    osts = [Ost(i, OstSpec(capacity_bytes=1 * TB)) for i in range(4)]
    fs = LustreFilesystem("scratch", osts)
    fs.mkdir("/u", now=0.0)
    return fs


class TestEligibility:
    def test_old_untouched_file_is_eligible(self, fs):
        fs.create_file("/u/old", now=0.0, size=MiB)
        purger = Purger(fs)
        assert purger.eligible(fs.namespace.get("/u/old"), now=15 * DAY)

    def test_recent_create_protected(self, fs):
        fs.create_file("/u/new", now=10 * DAY, size=MiB)
        purger = Purger(fs)
        assert not purger.eligible(fs.namespace.get("/u/new"), now=15 * DAY)

    def test_recent_read_protects(self, fs):
        """'not created, modified, or accessed within a contiguous 14 day
        range' — a read resets the clock."""
        fs.create_file("/u/f", now=0.0, size=MiB)
        fs.read_file("/u/f", now=10 * DAY)
        purger = Purger(fs)
        assert not purger.eligible(fs.namespace.get("/u/f"), now=20 * DAY)
        assert purger.eligible(fs.namespace.get("/u/f"), now=25 * DAY)

    def test_recent_write_protects(self, fs):
        fs.create_file("/u/f", now=0.0, size=MiB)
        fs.append("/u/f", MiB, now=13 * DAY)
        assert not Purger(fs).eligible(fs.namespace.get("/u/f"), now=20 * DAY)

    def test_exemption(self, fs):
        fs.create_file("/u/keep", now=0.0, size=MiB, project="pinned")
        purger = Purger(fs, exempt=lambda e: e.project == "pinned")
        assert not purger.eligible(fs.namespace.get("/u/keep"), now=30 * DAY)

    def test_directories_never_eligible(self, fs):
        assert not Purger(fs).eligible(fs.namespace.get("/u"), now=100 * DAY)


class TestSweep:
    def test_sweep_removes_and_reclaims(self, fs):
        fs.create_file("/u/old", now=0.0, size=10 * MiB)
        fs.create_file("/u/new", now=20 * DAY, size=10 * MiB)
        report = Purger(fs).sweep(now=21 * DAY)
        assert report.files_purged == 1
        assert report.bytes_purged == 10 * MiB
        assert "/u/old" not in fs.namespace
        assert "/u/new" in fs.namespace
        assert report.fill_after < report.fill_before

    def test_dry_run_deletes_nothing(self, fs):
        fs.create_file("/u/old", now=0.0, size=MiB)
        report = Purger(fs).sweep(now=30 * DAY, dry_run=True)
        assert report.files_purged == 1
        assert "/u/old" in fs.namespace
        assert Purger(fs).total_purged_bytes() == 0

    def test_never_deletes_recently_touched(self, fs):
        """Safety invariant: no file touched within the window is removed."""
        for i in range(50):
            fs.create_file(f"/u/f{i}", now=float(i) * DAY, size=MiB)
        now = 40 * DAY
        Purger(fs).sweep(now=now)
        for entry in fs.namespace.files():
            assert now - entry.last_touched() <= 14 * DAY

    def test_repeated_sweeps_accumulate(self, fs):
        fs.create_file("/u/a", now=0.0, size=MiB)
        fs.create_file("/u/b", now=20 * DAY, size=MiB)
        purger = Purger(fs)
        purger.sweep(now=15 * DAY)
        purger.sweep(now=40 * DAY)
        assert purger.total_purged_bytes() == 2 * MiB
        assert len(purger.reports) == 2

    def test_validation(self, fs):
        with pytest.raises(ValueError):
            Purger(fs, age_limit=0)
        with pytest.raises(ValueError):
            Purger(fs, batch_size=0)


class TestStreamingSweep:
    """The batched sweep must be invisible in the reports: any batch size
    (including mid-walk drains) yields the identical PurgeReport and final
    namespace as the collect-everything-first behaviour."""

    def _populate(self, fs, n=137):
        # Mix of eligible (old), protected (fresh), and exempt-by-test files
        # spread over several directories so drains happen mid-directory
        # and across directory boundaries.
        for d in range(7):
            fs.mkdir(f"/u/d{d}", now=0.0)
        for i in range(n):
            d = f"/u/d{i % 7}"
            age = 0.0 if i % 3 else 20 * DAY
            fs.create_file(f"{d}/f{i:03d}", now=age, size=(i + 1) * MiB)

    def _make(self, batch_size):
        osts = [Ost(i, OstSpec(capacity_bytes=1 * TB)) for i in range(4)]
        fs = LustreFilesystem("scratch", osts)
        fs.mkdir("/u", now=0.0)
        self._populate(fs)
        return fs, Purger(fs, batch_size=batch_size)

    def test_batch_size_does_not_change_report_or_namespace(self):
        fs_ref, ref_purger = self._make(batch_size=10**9)  # one giant batch
        ref = ref_purger.sweep(now=21 * DAY)
        for batch_size in (1, 3, 10, 137):
            fs, purger = self._make(batch_size=batch_size)
            report = purger.sweep(now=21 * DAY)
            assert report == ref
            assert sorted(e.path for e in fs.namespace.files()) == sorted(
                e.path for e in fs_ref.namespace.files())
            assert fs.used_bytes == fs_ref.used_bytes

    def test_dry_run_report_matches_real_run(self):
        """Dry run must predict exactly what a real run would do."""
        fs_dry, purger_dry = self._make(batch_size=5)
        dry = purger_dry.sweep(now=21 * DAY, dry_run=True)
        fs_real, purger_real = self._make(batch_size=5)
        real = purger_real.sweep(now=21 * DAY)
        assert dry.files_examined == real.files_examined
        assert dry.files_purged == real.files_purged
        assert dry.bytes_purged == real.bytes_purged
        assert dry.fill_before == real.fill_before
        # Dry run must not touch the namespace or capacity.
        assert dry.fill_after == dry.fill_before
        assert len(list(fs_dry.namespace.files())) == dry.files_examined

    def test_mid_walk_drain_preserves_safety_invariant(self):
        fs, purger = self._make(batch_size=2)
        now = 21 * DAY
        purger.sweep(now=now)
        for entry in fs.namespace.files():
            assert now - entry.last_touched() <= purger.age_limit
