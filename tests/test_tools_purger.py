"""Purge engine tests: the 14-day policy and its invariants."""

import pytest

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.tools.purger import Purger
from repro.units import DAY, MiB, TB


@pytest.fixture
def fs():
    osts = [Ost(i, OstSpec(capacity_bytes=1 * TB)) for i in range(4)]
    fs = LustreFilesystem("scratch", osts)
    fs.mkdir("/u", now=0.0)
    return fs


class TestEligibility:
    def test_old_untouched_file_is_eligible(self, fs):
        fs.create_file("/u/old", now=0.0, size=MiB)
        purger = Purger(fs)
        assert purger.eligible(fs.namespace.get("/u/old"), now=15 * DAY)

    def test_recent_create_protected(self, fs):
        fs.create_file("/u/new", now=10 * DAY, size=MiB)
        purger = Purger(fs)
        assert not purger.eligible(fs.namespace.get("/u/new"), now=15 * DAY)

    def test_recent_read_protects(self, fs):
        """'not created, modified, or accessed within a contiguous 14 day
        range' — a read resets the clock."""
        fs.create_file("/u/f", now=0.0, size=MiB)
        fs.read_file("/u/f", now=10 * DAY)
        purger = Purger(fs)
        assert not purger.eligible(fs.namespace.get("/u/f"), now=20 * DAY)
        assert purger.eligible(fs.namespace.get("/u/f"), now=25 * DAY)

    def test_recent_write_protects(self, fs):
        fs.create_file("/u/f", now=0.0, size=MiB)
        fs.append("/u/f", MiB, now=13 * DAY)
        assert not Purger(fs).eligible(fs.namespace.get("/u/f"), now=20 * DAY)

    def test_exemption(self, fs):
        fs.create_file("/u/keep", now=0.0, size=MiB, project="pinned")
        purger = Purger(fs, exempt=lambda e: e.project == "pinned")
        assert not purger.eligible(fs.namespace.get("/u/keep"), now=30 * DAY)

    def test_directories_never_eligible(self, fs):
        assert not Purger(fs).eligible(fs.namespace.get("/u"), now=100 * DAY)


class TestSweep:
    def test_sweep_removes_and_reclaims(self, fs):
        fs.create_file("/u/old", now=0.0, size=10 * MiB)
        fs.create_file("/u/new", now=20 * DAY, size=10 * MiB)
        report = Purger(fs).sweep(now=21 * DAY)
        assert report.files_purged == 1
        assert report.bytes_purged == 10 * MiB
        assert "/u/old" not in fs.namespace
        assert "/u/new" in fs.namespace
        assert report.fill_after < report.fill_before

    def test_dry_run_deletes_nothing(self, fs):
        fs.create_file("/u/old", now=0.0, size=MiB)
        report = Purger(fs).sweep(now=30 * DAY, dry_run=True)
        assert report.files_purged == 1
        assert "/u/old" in fs.namespace
        assert Purger(fs).total_purged_bytes() == 0

    def test_never_deletes_recently_touched(self, fs):
        """Safety invariant: no file touched within the window is removed."""
        for i in range(50):
            fs.create_file(f"/u/f{i}", now=float(i) * DAY, size=MiB)
        now = 40 * DAY
        Purger(fs).sweep(now=now)
        for entry in fs.namespace.files():
            assert now - entry.last_touched() <= 14 * DAY

    def test_repeated_sweeps_accumulate(self, fs):
        fs.create_file("/u/a", now=0.0, size=MiB)
        fs.create_file("/u/b", now=20 * DAY, size=MiB)
        purger = Purger(fs)
        purger.sweep(now=15 * DAY)
        purger.sweep(now=40 * DAY)
        assert purger.total_purged_bytes() == 2 * MiB
        assert len(purger.reports) == 2

    def test_validation(self, fs):
        with pytest.raises(ValueError):
            Purger(fs, age_limit=0)
