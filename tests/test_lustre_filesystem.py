"""LustreFilesystem tests: allocation, QOS behaviour, accounting."""

import pytest

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.units import GiB, MiB, TB


def make_fs(n_osts=8, capacity=16 * TB, **kwargs):
    osts = [Ost(i, OstSpec(capacity_bytes=capacity)) for i in range(n_osts)]
    return LustreFilesystem("testfs", osts, **kwargs)


class TestAllocation:
    def test_round_robin_when_balanced(self):
        fs = make_fs()
        first = fs.choose_osts(2)
        second = fs.choose_osts(2)
        assert first != second  # the cursor advances

    def test_qos_prefers_empty_osts_when_imbalanced(self):
        fs = make_fs(n_osts=4, capacity=1000)
        fs.osts[0].allocate(900)
        fs.osts[1].allocate(900)
        chosen = fs.choose_osts(2)
        assert set(chosen) == {2, 3}

    def test_stripe_count_clamped_to_ost_count(self):
        fs = make_fs(n_osts=2)
        assert len(fs.choose_osts(16)) == 2

    def test_explicit_osts_validated(self):
        fs = make_fs(n_osts=2)
        with pytest.raises(KeyError):
            fs.layout_for(osts=(99,))


class TestFileOps:
    def test_create_charges_osts(self):
        fs = make_fs()
        fs.create_file("/f", now=0.0, size=4 * MiB, stripe_count=4)
        assert fs.used_bytes == 4 * MiB
        entry = fs.namespace.get("/f")
        assert entry.layout.stripe_count == 4

    def test_append_charges_only_delta(self):
        fs = make_fs()
        fs.create_file("/f", now=0.0, size=2 * MiB, stripe_count=2)
        fs.append("/f", 2 * MiB, now=1.0)
        assert fs.used_bytes == 4 * MiB
        assert fs.namespace.get("/f").size == 4 * MiB

    def test_unlink_releases_capacity(self):
        fs = make_fs()
        fs.create_file("/f", now=0.0, size=8 * MiB)
        fs.unlink("/f")
        assert fs.used_bytes == 0
        assert "/f" not in fs.namespace

    def test_read_records_ost_traffic(self):
        fs = make_fs()
        fs.create_file("/f", now=0.0, size=2 * MiB, stripe_count=1,
                       osts=(3,))
        fs.read_file("/f", now=1.0)
        assert fs.ost(3).read_bytes_total == 2 * MiB

    def test_mkdir_parents(self):
        fs = make_fs()
        fs.mkdir("/a/b/c", now=0.0)
        assert "/a/b" in fs.namespace

    def test_stat_charges_mds_per_stripe(self):
        fs = make_fs()
        fs.create_file("/wide", now=0.0, stripe_count=8)
        fs.create_file("/narrow", now=0.0, stripe_count=1)
        before = fs.mds.busy_seconds
        fs.stat("/wide")
        wide_cost = fs.mds.busy_seconds - before
        before = fs.mds.busy_seconds
        fs.stat("/narrow")
        narrow_cost = fs.mds.busy_seconds - before
        assert wide_cost > 2 * narrow_cost

    def test_du_walks_everything(self):
        fs = make_fs()
        fs.mkdir("/p", now=0.0)
        fs.create_file("/p/a", now=0.0, size=100)
        fs.create_file("/p/b", now=0.0, size=200)
        before = fs.mds.busy_seconds
        total = fs.du("/p")
        assert total == 300
        assert fs.mds.busy_seconds > before

    def test_fill_fraction(self):
        fs = make_fs(n_osts=2, capacity=1000)
        fs.create_file("/f", now=0.0, size=500, stripe_count=2,
                       stripe_size=250)
        assert fs.fill_fraction == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            LustreFilesystem("x", [])
        with pytest.raises(ValueError):
            make_fs(default_stripe_count=0)
