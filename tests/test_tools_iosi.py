"""IOSI tests: burst detection and cross-run signature extraction."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.tools.iosi import Iosi, IoSignature
from repro.units import GB, MiB
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace
from repro.workloads.model import merge_traces


class TestBurstDetection:
    def test_clean_bursts(self):
        iosi = Iosi(bin_seconds=1.0)
        times = np.arange(100, dtype=float)
        bw = np.full(100, 10.0)
        bw[20:25] = 1000.0
        bw[60:63] = 900.0
        bursts = iosi.detect_bursts(times, bw)
        assert len(bursts) == 2
        assert bursts[0].start == pytest.approx(20.0)
        assert bursts[0].duration == pytest.approx(5.0)
        assert bursts[0].volume_bytes == pytest.approx(5 * 990.0)

    def test_no_bursts_in_flat_series(self):
        iosi = Iosi(bin_seconds=1.0)
        times = np.arange(50, dtype=float)
        assert iosi.detect_bursts(times, np.full(50, 5.0)) == []

    def test_empty_series(self):
        assert Iosi().detect_bursts(np.empty(0), np.empty(0)) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Iosi().detect_bursts(np.arange(3.0), np.arange(4.0))


class TestSignatureExtraction:
    def _noisy_trace_with_app(self, seed=1, n_runs=3, period=600.0,
                              run_len=3000.0):
        """A shared server log: background analytics + one periodic
        checkpoint app running in known windows."""
        rng = RngStreams(seed)
        app = CheckpointApp(name="target", n_procs=512,
                            bytes_per_proc=64 * MiB, interval=period,
                            aggregate_bandwidth=40 * GB)
        noise = AnalyticsApp(name="noise", request_rate=800.0)
        pieces = []
        windows = []
        for run in range(n_runs):
            t0 = run * (run_len + 1200.0)
            pieces.append(checkpoint_trace(
                app, duration=run_len, rng=rng.get(f"ck{run}"),
                start_offset=0.0).slice(0, run_len))
            # shift the run to its window
            trace = pieces[-1]
            trace.times += t0
            windows.append((t0, t0 + run_len))
        background = analytics_trace(
            noise, duration=n_runs * (run_len + 1200.0), rng=rng.get("bg"))
        server = merge_traces(pieces + [background], label="server")
        return app, server, windows

    def test_extracts_period_and_volume(self):
        app, server, windows = self._noisy_trace_with_app()
        iosi = Iosi(bin_seconds=5.0)
        sig = iosi.extract(server, windows)
        assert sig.matches(period=app.interval,
                           volume_bytes=app.checkpoint_bytes, rel_tol=0.2)
        assert sig.n_runs == 3

    def test_bursts_per_run_counts(self):
        app, server, windows = self._noisy_trace_with_app(period=600.0,
                                                          run_len=3000.0)
        sig = Iosi(bin_seconds=5.0).extract(server, windows)
        assert sig.bursts_per_run == pytest.approx(5.0, abs=1.0)

    def test_single_run_still_works(self):
        app, server, windows = self._noisy_trace_with_app(n_runs=1)
        sig = Iosi(bin_seconds=5.0).extract(server, windows[:1])
        assert sig.burst_volume_bytes == pytest.approx(
            app.checkpoint_bytes, rel=0.25)

    def test_no_bursts_raises(self):
        _app, server, _ = self._noisy_trace_with_app()
        iosi = Iosi(bin_seconds=5.0, threshold_sigmas=2.0)
        # A window with only background noise.
        with pytest.raises(ValueError):
            iosi.extract(server, [(1e9, 1e9 + 100.0)])

    def test_bad_window_rejected(self):
        _app, server, _ = self._noisy_trace_with_app()
        with pytest.raises(ValueError):
            Iosi().extract(server, [(100.0, 50.0)])
        with pytest.raises(ValueError):
            Iosi().extract(server, [])


class TestSignatureMatch:
    def test_matches_tolerance(self):
        sig = IoSignature(period=600.0, burst_volume_bytes=1e12,
                          burst_duration=30.0, bursts_per_run=5, n_runs=3)
        assert sig.matches(period=650.0, volume_bytes=1.1e12)
        assert not sig.matches(period=1200.0, volume_bytes=1e12)

    def test_ground_truth_validation(self):
        sig = IoSignature(600.0, 1e12, 30.0, 5, 3)
        with pytest.raises(ValueError):
            sig.matches(period=0.0, volume_bytes=1.0)
