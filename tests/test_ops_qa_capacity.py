"""Thin-filesystem QA and capacity-planning tests (Lessons 16 & 10)."""

import numpy as np
import pytest

from repro.ops.capacity import NamespacePlanner, Project
from repro.ops.qa import PerformanceQa, ThinFilesystem
from repro.units import GB, PB, TB


class TestThinFilesystem:
    def test_small_reservation(self, mini_system):
        thin = ThinFilesystem(mini_system, reserve_fraction=0.01)
        assert thin.capacity_overhead() == pytest.approx(0.01, rel=0.05)
        assert thin.fs.capacity_bytes < mini_system.total_capacity_bytes() * 0.02

    def test_spans_every_ost(self, mini_system):
        thin = ThinFilesystem(mini_system)
        assert len(thin.fs.osts) == mini_system.spec.n_osts

    def test_reformat_discards_contents(self, mini_system):
        thin = ThinFilesystem(mini_system)
        thin.fs.create_file("/bench", now=0.0, size=1 * GB)
        assert thin.fs.used_bytes > 0
        thin.reformat()
        assert thin.fs.used_bytes == 0
        assert thin.formats == 2

    def test_does_not_touch_production_osts(self, mini_system):
        thin = ThinFilesystem(mini_system)
        thin.fs.create_file("/bench", now=0.0, size=1 * GB)
        assert all(o.used_bytes == 0 for o in mini_system.osts)

    def test_validation(self, mini_system):
        with pytest.raises(ValueError):
            ThinFilesystem(mini_system, reserve_fraction=0.6)


class TestPerformanceQa:
    def test_baseline_then_clean_cycle(self, mini_system):
        qa = PerformanceQa(mini_system, tolerance=0.10)
        qa.record_baseline(now=0.0)
        findings = qa.run_qa_cycle(now=1.0)
        assert findings == []  # nothing changed

    def test_detects_degraded_drive(self, mini_system):
        qa = PerformanceQa(mini_system, tolerance=0.10)
        qa.record_baseline(now=0.0)
        # Degrade one member drive of OST 0's group by 40%.
        victim = int(mini_system.ssus[0].members_matrix[0][0])
        mini_system.population.speed_factor[victim] *= 0.6
        findings = qa.run_qa_cycle(now=1.0)
        assert any(f.ost_index == 0 for f in findings)
        f0 = next(f for f in findings if f.ost_index == 0)
        # Regression relative to the baseline min-member; at least the
        # tolerance, at most the injected 40%.
        assert 0.10 < f0.regression <= 0.45

    def test_cycle_without_baseline_fails(self, mini_system):
        with pytest.raises(RuntimeError):
            PerformanceQa(mini_system).run_qa_cycle()

    def test_validation(self, mini_system):
        with pytest.raises(ValueError):
            PerformanceQa(mini_system, tolerance=0.0)


class TestProjects:
    def test_tier_classification(self):
        small = Project("s", capacity_bytes=10 * TB, bandwidth=1 * GB)
        large = Project("l", capacity_bytes=2000 * TB, bandwidth=80 * GB)
        assert small.tier() == "capS-bwS"
        assert large.tier() == "capL-bwL"

    def test_validation(self):
        with pytest.raises(ValueError):
            Project("x", capacity_bytes=-1, bandwidth=0)


class TestNamespacePlanner:
    def planner(self):
        return NamespacePlanner({
            "atlas1": (16 * PB, 320 * GB),
            "atlas2": (16 * PB, 320 * GB),
        })

    def projects(self, n=20, seed=0):
        rng = np.random.default_rng(seed)
        return [
            Project(f"p{i}",
                    capacity_bytes=int(rng.uniform(50, 1000) * TB),
                    bandwidth=float(rng.uniform(2, 60) * GB))
            for i in range(n)
        ]

    def test_all_projects_assigned_once(self):
        report = self.planner().plan(self.projects())
        names = [p for ns in report.namespaces for p in ns.projects]
        assert sorted(names) == sorted(f"p{i}" for i in range(20))

    def test_balanced_two_axes(self):
        report = self.planner().plan(self.projects(40))
        assert report.capacity_imbalance < 0.10
        assert report.bandwidth_imbalance < 0.15

    def test_greedy_beats_naive_split(self):
        """The classification model balances the *worse axis* better than
        alternating assignment — the point of §IV-C's project model."""
        projects = self.projects(30, seed=5)
        report = self.planner().plan(projects)
        # naive: alternate in input order
        naive_cap = [0, 0]
        naive_bw = [0.0, 0.0]
        for i, p in enumerate(projects):
            naive_cap[i % 2] += p.capacity_bytes
            naive_bw[i % 2] += p.bandwidth
        naive_worst = max(
            abs(naive_cap[0] - naive_cap[1]) / (16 * PB),
            abs(naive_bw[0] - naive_bw[1]) / (320 * GB),
        )
        greedy_worst = max(report.capacity_imbalance,
                           report.bandwidth_imbalance)
        assert greedy_worst <= naive_worst + 1e-9

    def test_required_capacity_30pct_headroom(self):
        planner = self.planner()
        projects = [Project("p", capacity_bytes=10 * PB, bandwidth=1 * GB)]
        assert planner.required_capacity(projects) == int(13 * PB)

    def test_knee_check(self):
        planner = self.planner()
        light = planner.plan([Project("p", 2 * PB, 10 * GB)])
        assert planner.stays_below_knee(light)
        heavy = planner.plan([Project(f"p{i}", 6 * PB, 10 * GB)
                              for i in range(5)])
        assert not planner.stays_below_knee(heavy)

    def test_namespace_of(self):
        report = self.planner().plan(self.projects(4))
        assert report.namespace_of("p0") in ("atlas1", "atlas2")
        with pytest.raises(KeyError):
            report.namespace_of("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            NamespacePlanner({})
        with pytest.raises(ValueError):
            self.planner().required_capacity([], headroom=-0.1)
