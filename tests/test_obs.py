"""The cross-layer telemetry spine: instruments, tracer, exporters,
engine hooks, per-layer flow telemetry, and the trace/report CLI surface —
plus the regression fixes that rode along (MetricsDb timestamp ties and
counter resets, Engine.every first-tick timing)."""

import json
import math

import pytest

from repro.monitoring.metricsdb import MetricsDb
from repro.obs.instruments import (
    Histogram,
    Telemetry,
    get_telemetry,
    use_telemetry,
)
from repro.obs.report import (
    PREFIX_TO_PROFILE,
    bottleneck_layer,
    layer_usage_from_snapshot,
    render_layer_report,
)
from repro.obs.trace import (
    Tracer,
    instrument_engine,
    read_chrome_trace,
    read_jsonl,
    use_tracer,
)
from repro.sim.engine import Engine


# ---------------------------------------------------------------- instruments


class TestCounterGauge:
    def test_counter_accumulates(self):
        t = Telemetry()
        t.counter("bytes", "ost0").add(10.0)
        t.counter("bytes", "ost0").add(5.0)
        assert t.counter("bytes", "ost0").value == 15.0

    def test_keyed_by_name_and_source(self):
        t = Telemetry()
        t.counter("bytes", "a").add(1.0)
        t.counter("bytes", "b").add(2.0)
        assert t.counter("bytes", "a").value == 1.0
        assert t.counter("bytes", "b").value == 2.0

    def test_gauge_last_value_wins(self):
        t = Telemetry()
        t.gauge("util").set(0.5)
        t.gauge("util").set(0.9)
        assert t.gauge("util").value == 0.9

    def test_disabled_registry_records_nothing(self):
        t = Telemetry(enabled=False)
        t.counter("c").add(10.0)
        t.gauge("g").set(1.0)
        t.histogram("h").observe(1.0)
        assert t.counter("c").value == 0.0
        assert t.gauge("g").value == 0.0
        assert t.histogram("h").count == 0


class TestHistogram:
    def test_bucket_boundaries(self):
        h = Telemetry().histogram("h", floor=1.0, growth=2.0)
        # bucket 0 is [0, floor]; bucket i is (floor*2^(i-1), floor*2^i]
        assert h._bucket_index(0.0) == 0
        assert h._bucket_index(1.0) == 0
        assert h._bucket_index(1.5) == 1
        assert h._bucket_index(2.0) == 1
        assert h._bucket_index(2.0000001) == 2
        assert h._bucket_index(4.0) == 2
        assert h.bucket_upper_bound(3) == 8.0

    def test_mean_and_extremes(self):
        h = Telemetry().histogram("h", floor=1.0)
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0
        assert h.max == 10.0

    def test_percentile_within_bucket_error(self):
        h = Telemetry().histogram("h", floor=1.0, growth=2.0)
        for v in range(1, 101):
            h.observe(float(v))
        # log-scale estimate: within one growth factor of the true value,
        # and never outside the observed range.
        for p, true in ((50, 50.0), (90, 90.0), (99, 99.0)):
            est = h.percentile(p)
            assert true / 2.0 <= est <= 2.0 * true
            assert h.min <= est <= h.max

    def test_percentile_single_value_clamps(self):
        h = Telemetry().histogram("h", floor=1.0)
        h.observe(5.0)
        # bucket upper bound is 8, but the clamp keeps it at the observation
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0

    def test_percentile_empty_and_bounds(self):
        h = Telemetry().histogram("h")
        assert h.percentile(99) == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_rejects_bad_observations(self):
        h = Telemetry().histogram("h")
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.observe(float("nan"))


class TestTelemetryRegistry:
    def test_snapshot_round_trips_through_json(self):
        t = Telemetry()
        t.counter("c", "s").add(3.0)
        t.gauge("g").set(1.5)
        t.histogram("h").observe(0.01)
        snap = json.loads(json.dumps(t.snapshot()))
        assert snap["counters"] == [{"name": "c", "source": "s", "value": 3.0}]
        assert snap["gauges"][0]["value"] == 1.5
        assert snap["histograms"][0]["count"] == 1

    def test_use_telemetry_scopes_the_default(self):
        before = get_telemetry()
        mine = Telemetry()
        with use_telemetry(mine):
            assert get_telemetry() is mine
        assert get_telemetry() is before

    def test_publish_bridges_into_metricsdb(self):
        t = Telemetry()
        t.counter("ost.write_bytes", "ost:0").add(100.0)
        t.gauge("flow.layer.max_util", "ost").set(0.8)
        h = t.histogram("mds.service_seconds", "mds0")
        h.observe(0.002)
        db = MetricsDb()
        written = db.ingest_telemetry(t, now=30.0)
        assert written == 2 + 4
        assert db.latest("ost.write_bytes", "ost:0").value == 100.0
        assert db.latest("flow.layer.max_util", "ost").value == 0.8
        assert db.latest("mds.service_seconds.count", "mds0").value == 1.0
        assert db.latest("mds.service_seconds.p99", "mds0").value == \
            pytest.approx(0.002)


# --------------------------------------------------------------------- tracer


class TestTracer:
    def test_span_nesting_depth_and_parent(self):
        tr = Tracer()
        with tr.span("outer", "test"):
            with tr.span("inner", "test"):
                pass
        inner, outer = tr.spans  # inner closes first
        assert inner.name == "inner" and inner.depth == 1
        assert inner.parent == "outer"
        assert outer.name == "outer" and outer.depth == 0
        assert outer.parent is None

    def test_sim_clock_stamps_spans(self):
        eng = Engine()
        tr = Tracer()
        tr.attach_engine(eng)

        def _proc():
            h = tr.begin("work", "test")
            yield 5.0
            tr.end(h)

        eng.process(_proc())
        eng.run()
        (span,) = tr.spans
        assert span.t0_sim == 0.0
        assert span.t1_sim == 5.0
        assert span.sim_duration == 5.0
        assert span.wall_duration >= 0.0

    def test_unbalanced_end_closes_intervening_spans(self):
        tr = Tracer()
        outer = tr.begin("outer")
        tr.begin("inner")
        tr.end(outer)
        assert [s.name for s in tr.spans] == ["inner", "outer"]
        assert tr._stack == []

    def test_open_spans_may_overlap_arbitrarily(self):
        tr = Tracer()
        a = tr.open("a")
        b = tr.open("b")
        tr.end(a)  # a closes before b, no forced closure of b
        assert [s.name for s in tr.spans] == ["a"]
        tr.end(b)
        assert [s.name for s in tr.spans] == ["a", "b"]

    def test_disabled_tracer_is_inert(self):
        tr = Tracer(enabled=False)
        with tr.span("x"):
            tr.instant("y")
        assert tr.spans == [] and tr.instants == []

    def test_chrome_trace_round_trip(self, tmp_path):
        tr = Tracer()
        with tr.span("solve", "flow", n=3):
            tr.instant("saturated:ost:1", "flow")
        t = Telemetry()
        t.counter("ost.write_bytes", "ost:0").add(42.0)
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(path, telemetry=t)

        data = read_chrome_trace(path)
        events = data["traceEvents"]
        x = [e for e in events if e["ph"] == "X"]
        i = [e for e in events if e["ph"] == "i"]
        c = [e for e in events if e["ph"] == "C"]
        assert x[0]["name"] == "solve" and x[0]["cat"] == "flow"
        assert x[0]["args"]["n"] == 3
        assert i[0]["name"] == "saturated:ost:1"
        assert c[0]["name"] == "ost.write_bytes"
        assert c[0]["cat"] == "ost"  # layer = metric-name prefix
        assert data["telemetry"]["counters"][0]["value"] == 42.0

    def test_read_chrome_trace_rejects_non_trace(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            read_chrome_trace(path)

    def test_jsonl_round_trip(self, tmp_path):
        tr = Tracer()
        with tr.span("a", "cat1", k="v"):
            pass
        path = tmp_path / "spans.jsonl"
        tr.write_jsonl(path)
        rows = read_jsonl(path)
        assert len(rows) == 1
        assert rows[0]["name"] == "a"
        assert rows[0]["cat"] == "cat1"
        assert rows[0]["args"] == {"k": "v"}


class TestEngineHooks:
    def test_event_and_process_counting(self):
        eng = Engine()
        t = Telemetry()
        instrument_engine(eng, telemetry=t)

        def _proc():
            yield 1.0
            yield 2.0

        eng.process(_proc(), name="p")
        eng.run()
        # three steps: start, after 1.0, after 2.0 (StopIteration)
        assert eng.process_event_counts["p"] == 3
        assert t.counter("engine.events").value == eng.events_processed

    def test_process_lifecycle_spans(self):
        eng = Engine()
        tr = Tracer()
        instrument_engine(eng, tracer=tr)

        def _proc():
            yield 4.0

        eng.process(_proc(), name="worker")
        eng.run()
        spans = [s for s in tr.spans if s.cat == "engine"]
        assert [s.name for s in spans] == ["process:worker"]
        assert spans[0].sim_duration == 4.0
        assert spans[0].args["steps"] == 2

    def test_hooks_do_not_perturb_the_run(self):
        def _workload(eng):
            order = []

            def _proc(tag, delay):
                yield delay
                order.append((tag, eng.now))
                yield delay

            eng.process(_proc("a", 1.0), name="a")
            eng.process(_proc("b", 0.5), name="b")
            eng.run()
            return order, eng.events_processed

        plain = _workload(Engine())
        hooked_eng = Engine()
        instrument_engine(hooked_eng, telemetry=Telemetry(), tracer=Tracer())
        hooked = _workload(hooked_eng)
        assert plain == hooked


# ------------------------------------------------------ regressions (bugfixes)


class TestMetricsDbRegressions:
    def test_equal_timestamps_accepted(self):
        db = MetricsDb()
        db.insert("m", "s", 5.0, 1.0)
        db.insert("m", "s", 5.0, 2.0)  # two pollers, same instant: legal
        assert db.latest("m", "s").value == 2.0

    def test_strictly_out_of_order_still_rejected(self):
        db = MetricsDb()
        db.insert("m", "s", 5.0, 1.0)
        with pytest.raises(ValueError):
            db.insert("m", "s", 4.999, 1.0)

    def test_rate_survives_counter_reset(self):
        db = MetricsDb()
        # counter climbs, resets (controller reboot), climbs again
        db.insert("bytes", "c", 0.0, 1000.0)
        db.insert("bytes", "c", 10.0, 2000.0)
        db.insert("bytes", "c", 20.0, 0.0)  # reset
        db.insert("bytes", "c", 30.0, 500.0)
        rate = db.rate("bytes", "c")
        assert rate >= 0.0
        # window restarts at the reset: 500 bytes over the last 10 s
        assert rate == pytest.approx(50.0)

    def test_rate_without_reset_unchanged(self):
        db = MetricsDb()
        db.insert("bytes", "c", 0.0, 0.0)
        db.insert("bytes", "c", 10.0, 1000.0)
        assert db.rate("bytes", "c") == pytest.approx(100.0)

    def test_rate_all_points_after_reset_coincident(self):
        db = MetricsDb()
        db.insert("bytes", "c", 10.0, 1000.0)
        db.insert("bytes", "c", 10.0, 0.0)  # reset at the same timestamp
        assert db.rate("bytes", "c") == 0.0


class TestEngineEveryRegression:
    def test_first_tick_at_requested_start(self):
        eng = Engine()
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now), start=0.0)
        eng.run(until=35.0)
        assert ticks == [0.0, 10.0, 20.0, 30.0]

    def test_start_in_past_clamps_to_now(self):
        eng = Engine()
        eng.run(until=5.0)  # advance the clock
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now), start=3.0)
        eng.run(until=40.0)
        assert ticks == [5.0, 15.0, 25.0, 35.0]

    def test_default_start_is_one_interval_out(self):
        eng = Engine()
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now))
        eng.run(until=25.0)
        assert ticks == [10.0, 20.0]


# ------------------------------------------------- flow + end-to-end telemetry


def _ior_run(system, n=96, **kwargs):
    from repro.iobench.ior import IorRun

    return IorRun(system, n_processes=n, ppn=16, placement="optimal", **kwargs)


class TestFlowTelemetry:
    def test_flow_result_gains_rounds_and_saturation_order(self, mini_system):
        result = _ior_run(mini_system).run()
        assert result is not None
        # the solver metadata rides on FlowResult
        from repro.core.path import PathBuilder, Transfer

        builder = PathBuilder(mini_system)
        transfers = _ior_run(mini_system)._build_transfers()
        flow_result = builder.solve(transfers)
        assert flow_result.rounds >= 1
        assert isinstance(flow_result.saturation_order, tuple)

    def test_solver_records_layer_gauges(self, mini_system):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            _ior_run(mini_system).run()
        usages = layer_usage_from_snapshot(telemetry.snapshot())
        prefixes = {u.prefix for u in usages}
        assert {"client", "oss", "couplet", "ost"} <= prefixes
        for u in usages:
            assert 0.0 <= u.max_util <= 1.0 + 1e-9
            assert u.load <= u.capacity * (1 + 1e-9)
        assert telemetry.counter("flow.solves").value == 1.0

    def test_telemetry_on_off_runs_identical(self, mini_system):
        def _measure(traced):
            eng = Engine()
            run = _ior_run(mini_system)
            if not traced:
                result = run.run(eng)
                return (result.aggregate_bw, result.bottleneck_components,
                        eng.events_processed, dict(eng.process_event_counts))
            telemetry, tracer = Telemetry(), Tracer()
            with use_telemetry(telemetry), use_tracer(tracer):
                instrument_engine(eng, telemetry=telemetry, tracer=tracer)
                result = run.run(eng)
            return (result.aggregate_bw, result.bottleneck_components,
                    eng.events_processed, dict(eng.process_event_counts))

        assert _measure(False) == _measure(True)

    def test_disabled_telemetry_records_nothing_on_hot_path(self, mini_system):
        registry = get_telemetry()
        before = len(registry.counters())
        _ior_run(mini_system).run()
        assert len(registry.counters()) == before


class TestRaidRebuildSpans:
    def test_rebuild_start_stop_span(self):
        import numpy as np

        from repro.hardware.disk import DiskPopulation
        from repro.hardware.raid import RaidGeometry, RaidGroup
        from repro.sim.rng import RngStreams

        pop = DiskPopulation(40, rng=RngStreams(0), block_slow_fraction=0.0,
                             fs_slow_fraction=0.0, healthy_sigma=0.0)
        group = RaidGroup(RaidGeometry(), pop, list(range(10)))
        tracer, telemetry = Tracer(), Telemetry()
        with use_tracer(tracer), use_telemetry(telemetry):
            group.erase_member(3)
            group.restore_member(3)
            group.finish_rebuild(3)
        (span,) = [s for s in tracer.spans if s.cat == "raid"]
        assert span.name == f"rebuild:{group.name}[3]"
        assert span.args["position"] == 3
        assert telemetry.counter("raid.rebuilds_started", group.name).value == 1.0
        assert telemetry.counter("raid.rebuilds_finished", group.name).value == 1.0


class TestMdsTelemetry:
    def test_service_latency_histogram(self, mini_system):
        from repro.lustre.mds import OpMix

        fs = next(iter(mini_system.filesystems.values()))
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            t = fs.mds.service_time(OpMix(creates=100))
        h = telemetry.histogram("mds.service_seconds", fs.mds.name)
        assert h.count == 1
        assert h.mean == pytest.approx(t / 100)
        assert telemetry.counter("mds.ops", fs.mds.name).value == 100.0


# ------------------------------------------------------------ report + CLI


class TestReport:
    def test_bottleneck_prefers_saturated_aggregate_util(self):
        snapshot = {
            "gauges": [
                {"name": "flow.layer.load", "source": "router", "value": 26.0},
                {"name": "flow.layer.capacity", "source": "router", "value": 100.0},
                {"name": "flow.layer.max_util", "source": "router", "value": 1.0},
                {"name": "flow.layer.saturated", "source": "router", "value": 41.0},
                {"name": "flow.layer.load", "source": "couplet", "value": 50.0},
                {"name": "flow.layer.capacity", "source": "couplet", "value": 100.0},
                {"name": "flow.layer.max_util", "source": "couplet", "value": 1.0},
                {"name": "flow.layer.saturated", "source": "couplet", "value": 18.0},
            ],
        }
        usages = layer_usage_from_snapshot(snapshot)
        assert [u.prefix for u in usages] == ["router", "couplet"]  # path order
        assert bottleneck_layer(usages).prefix == "couplet"

    def test_bottleneck_demand_limited_falls_back_to_hottest(self):
        snapshot = {
            "gauges": [
                {"name": "flow.layer.load", "source": "client", "value": 10.0},
                {"name": "flow.layer.capacity", "source": "client", "value": 100.0},
                {"name": "flow.layer.max_util", "source": "client", "value": 0.9},
                {"name": "flow.layer.saturated", "source": "client", "value": 0.0},
                {"name": "flow.layer.load", "source": "ost", "value": 10.0},
                {"name": "flow.layer.capacity", "source": "ost", "value": 100.0},
                {"name": "flow.layer.max_util", "source": "ost", "value": 0.4},
                {"name": "flow.layer.saturated", "source": "ost", "value": 0.0},
            ],
        }
        bn = bottleneck_layer(layer_usage_from_snapshot(snapshot))
        assert bn.prefix == "client"

    def test_render_handles_empty_snapshot(self):
        assert "no flow-solver telemetry" in render_layer_report({})

    def test_render_full_report(self, mini_system):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            _ior_run(mini_system).run()
        text = render_layer_report(telemetry.snapshot())
        assert "bottleneck layer:" in text
        assert "Layer utilization" in text


class TestCliTraceReport:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("trace") / "t.json"
        rc = main(["ior", "-n", "6048", "--placement", "optimal",
                   "--trace", str(path)])
        assert rc == 0
        return path

    def test_trace_has_five_plus_layers(self, trace_path):
        data = read_chrome_trace(trace_path)
        cats = {e.get("cat") for e in data["traceEvents"]
                if e.get("ph") in ("X", "i", "C")}
        layer_cats = cats & {"engine", "flow", "mds", "iobench",
                             "lnet", "oss", "ost", "raid"}
        assert len(layer_cats) >= 5, sorted(cats)
        # sim-time spans landed at real simulated times
        write = [e for e in data["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "ior.write_phase"]
        assert write and write[0]["dur"] == pytest.approx(30.0 * 1e6)

    def test_report_agrees_with_layer_profile(self, trace_path, capsys):
        from repro.analysis.layers import profile_layers
        from repro.cli import main
        from repro.core.spider import build_spider2

        data = read_chrome_trace(trace_path)
        usages = layer_usage_from_snapshot(data["telemetry"])
        observed = bottleneck_layer(usages)
        analytical = profile_layers(
            build_spider2(seed=2014, build_clients=False)).bottleneck_layer()
        assert PREFIX_TO_PROFILE[observed.prefix] == analytical.name

        rc = main(["report", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bottleneck layer:" in out

    def test_report_rejects_traceless_file(self, tmp_path, capsys):
        from repro.cli import main

        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"traceEvents": []}))
        assert main(["report", str(bare)]) == 1
