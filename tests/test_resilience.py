"""repro.resilience: detection model, playbooks, closed-loop campaigns,
and the paired manual-vs-automated study."""

from __future__ import annotations

import math

import pytest

from repro.core.spider import SpiderSystem
from repro.faults import FaultCampaign, FaultClass, FaultPlan, PlannedFault
from repro.faults.plan import cable_failure_scenario
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.trace import Tracer, use_tracer
from repro.resilience import (
    PLAYBOOKS,
    CallbackActuator,
    DetectionModel,
    Detector,
    Playbook,
    PlaybookRunner,
    PlaybookStep,
    RemediationPolicy,
    RetryPolicy,
    playbook_for,
    run_paired_study,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import mini_spec


def fresh_system() -> SpiderSystem:
    """Campaigns mutate the system in place — one per campaign."""
    return SpiderSystem(mini_spec(), seed=7)


def run_cable(policy: RemediationPolicy | None):
    system = fresh_system()
    plan = cable_failure_scenario(system)
    return FaultCampaign(system, plan, remediation=policy).run()


class TestDetectionModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DetectionModel(poll_interval=0.0)
        with pytest.raises(ValueError):
            DetectionModel(debounce=-1.0)
        with pytest.raises(ValueError):
            DetectionModel(miss_probability=1.0)

    def test_no_misses_lands_on_next_sweep_plus_debounce(self):
        model = DetectionModel(poll_interval=30.0, debounce=10.0,
                               miss_probability=0.0)
        det = Detector(model, RngStreams(0).get("resilience.detect"))
        # Onset at t=7: next sweep at 30, so delay = 23 + debounce.
        assert det.detection_delay(7.0) == pytest.approx(33.0)
        # Onset exactly on the grid still waits a full interval.
        assert det.detection_delay(60.0) == pytest.approx(40.0)

    def test_misses_add_whole_poll_intervals(self):
        model = DetectionModel(poll_interval=30.0, debounce=0.0,
                               miss_probability=0.6)
        det = Detector(model, RngStreams(3).get("resilience.detect"))
        delay = det.detection_delay(0.0)
        # Whatever the draws, the delay is sweep-aligned: 30 * k.
        assert delay % 30.0 == pytest.approx(0.0)
        assert delay >= 30.0

    def test_same_seed_same_delays(self):
        model = DetectionModel(miss_probability=0.5)
        d1 = Detector(model, RngStreams(9).get("resilience.detect"))
        d2 = Detector(model, RngStreams(9).get("resilience.detect"))
        times = [0.0, 17.0, 1234.5, 86_000.0]
        assert [d1.detection_delay(t) for t in times] == \
            [d2.detection_delay(t) for t in times]


class TestPlaybooks:
    def test_every_fault_class_has_a_playbook(self):
        for cls in FaultClass:
            book = playbook_for(cls)
            assert book.fault_class is cls
            assert book.steps
        assert set(PLAYBOOKS) == set(FaultClass)

    def test_step_and_book_validation(self):
        with pytest.raises(ValueError):
            PlaybookStep("bad", duration=0.0)
        with pytest.raises(ValueError):
            PlaybookStep("bad", duration=1.0, failure_probability=1.0)
        with pytest.raises(ValueError):
            Playbook(name="empty", fault_class=FaultClass.DISK_FAIL,
                     steps=())

    def test_retry_backoff_doubles_and_caps(self):
        retry = RetryPolicy(max_attempts=5, backoff_base=10.0,
                            backoff_cap=25.0, jitter=0.0)
        assert retry.backoff_seconds(1, 0.0) == pytest.approx(10.0)
        assert retry.backoff_seconds(2, 0.0) == pytest.approx(20.0)
        assert retry.backoff_seconds(3, 0.0) == pytest.approx(25.0)
        jittered = RetryPolicy(jitter=0.5).backoff_seconds(1, 1.0)
        assert jittered == pytest.approx(RetryPolicy().backoff_base * 1.5)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RemediationPolicy(decide_latency=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestPlaybookRunner:
    def _run(self, playbook: Playbook, policy: RemediationPolicy):
        """Drive one fault through the runner on a bare engine."""
        engine = Engine()
        tokens = {0: True}
        fault = PlannedFault(time=0.0, fault=playbook.fault_class, target=0)
        runner = PlaybookRunner(
            policy, engine=engine,
            actuator=CallbackActuator(
                repair=lambda f: tokens.pop(0, None) is not None,
                pending=lambda f: 0 in tokens),
            n_clients=64, n_routers=4,
            playbooks={playbook.fault_class: playbook})
        runner.on_fault(fault, engine.now)
        engine.run(until=1e9)
        return runner.finalize()

    def test_happy_path_stage_decomposition(self):
        book = Playbook(
            name="one-step", fault_class=FaultClass.DISK_SLOW,
            steps=(PlaybookStep("fix", 40.0, failure_probability=0.0),))
        policy = RemediationPolicy(
            detection=DetectionModel(poll_interval=30.0, debounce=5.0,
                                     miss_probability=0.0),
            decide_latency=2.0, verify_latency=15.0, seed=1)
        outcome = self._run(book, policy)
        assert outcome.n_faults == 1 and outcome.n_applied == 1
        rec = outcome.records[0]
        assert rec.completed and not rec.escalated
        assert rec.detect_seconds == pytest.approx(35.0)
        assert rec.decide_seconds == pytest.approx(2.0)
        assert rec.act_seconds == pytest.approx(40.0)
        assert rec.verify_seconds == pytest.approx(15.0)
        assert rec.mttr_seconds == pytest.approx(92.0)

    def test_hopeless_step_escalates_to_operator(self):
        book = Playbook(
            name="stuck", fault_class=FaultClass.DISK_SLOW,
            steps=(PlaybookStep("hang", 40.0, timeout=10.0,
                                failure_probability=0.999999),))
        policy = RemediationPolicy(
            retry=RetryPolicy(max_attempts=2, backoff_base=5.0,
                              backoff_cap=5.0, jitter=0.0),
            operator_delay=100.0, seed=1)
        outcome = self._run(book, policy)
        rec = outcome.records[0]
        assert rec.escalated and rec.applied
        assert rec.attempts == 2
        assert outcome.n_escalated == 1
        # Act = 2 timeouts + 1 backoff + operator page + manual step.
        assert rec.act_seconds == pytest.approx(10 + 5 + 10 + 100 + 40)

    def test_failover_playbook_appends_recovery_tail(self):
        base = dict(fault_class=FaultClass.CONTROLLER_FAIL,
                    steps=(PlaybookStep("s", 10.0, failure_probability=0.0),))
        plain = self._run(Playbook(name="plain", **base),
                          RemediationPolicy(seed=4))
        failover = self._run(Playbook(name="fo", failover=True, **base),
                             RemediationPolicy(seed=4))
        assert failover.records[0].act_seconds > plain.records[0].act_seconds

    def test_rejects_nonpositive_clients(self):
        with pytest.raises(ValueError):
            PlaybookRunner(
                RemediationPolicy(), engine=Engine(),
                actuator=CallbackActuator(repair=lambda f: True,
                                          pending=lambda f: False),
                n_clients=0)


class TestRemediatedCampaign:
    def test_same_seed_results_compare_equal(self):
        r1 = run_cable(RemediationPolicy(seed=11))
        r2 = run_cable(RemediationPolicy(seed=11))
        assert r1 == r2
        assert r1.remediation == r2.remediation

    def test_telemetry_on_off_bit_identical(self):
        quiet = run_cable(RemediationPolicy(seed=11))
        with use_telemetry(Telemetry(enabled=True)), \
                use_tracer(Tracer(enabled=True)):
            loud = run_cable(RemediationPolicy(seed=11))
        assert quiet == loud

    def test_remediation_races_and_beats_the_scripted_repair(self):
        result = run_cable(RemediationPolicy(seed=11))
        outcome = result.remediation
        assert outcome is not None
        assert outcome.n_faults == result.n_injected
        assert outcome.n_applied == outcome.n_faults
        assert outcome.n_preempted == 0
        # Every fault repaired exactly once despite two racing paths.
        assert result.n_repaired == result.n_injected

    def test_detect_decide_act_verify_spans_traced(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            run_cable(RemediationPolicy(seed=11))
        names = [s.name for s in tracer.spans if s.cat == "resilience"]
        for stage in ("detect:", "decide:", "act:", "verify:"):
            assert any(n.startswith(stage) for n in names)

    def test_recovery_stats_consistent_with_worst_case(self):
        system = fresh_system()
        plan = FaultPlan.random(system, duration=40_000.0, n_faults=6,
                                seed=11)
        result = FaultCampaign(system, plan, duration=40_000.0).run()
        worst = dict(result.recovery_times)
        assert result.recovery_stats
        for cls, n, mean in result.recovery_stats:
            assert n >= 1
            assert mean <= worst[cls] + 1e-9
        # Backward-compatible shapes: (class, worst) and (class, n, mean).
        assert all(len(item) == 2 for item in result.recovery_times)
        assert set(worst) == {cls for cls, _n, _m in result.recovery_stats}
        assert result.total_blackout_seconds() == pytest.approx(
            sum(n * mean for _c, n, mean in result.recovery_stats))

    def test_unremediated_campaign_has_no_outcome(self):
        result = run_cable(None)
        assert result.remediation is None


class TestPairedStudy:
    def test_cable_automated_strictly_beats_manual_and_standard(self):
        result = run_paired_study(fresh_system, cable_failure_scenario,
                                  seed=11)
        assert result.automated.blackout_seconds \
            < result.manual.blackout_seconds
        assert result.availability_gain > 0
        # The §IV-D ablation: imperative recovery beats standard.
        assert result.automated.blackout_seconds \
            < result.standard.blackout_seconds
        assert result.automated.availability > result.standard.availability
        assert result.blackout_reduction_seconds > 0

    def test_random_plan_automated_strictly_beats_manual(self):
        def plan(system):
            return FaultPlan.random(system, duration=40_000.0, n_faults=6,
                                    seed=11)

        result = run_paired_study(fresh_system, plan, seed=11,
                                  duration=40_000.0)
        assert result.automated.blackout_seconds \
            < result.manual.blackout_seconds
        assert result.availability_gain > 0
        assert result.automated.blackout_seconds \
            < result.standard.blackout_seconds

    def test_rows_render(self):
        result = run_paired_study(fresh_system, cable_failure_scenario,
                                  seed=11)
        assert len(result.rows()) == 3
        assert all(len(row) == 4 for row in result.rows())
        assert result.automated.remediation is not None
        assert result.automated.remediation.class_rows()


class TestSchedulerRemediation:
    def _run(self, policy):
        from repro.sched.arrivals import JobMix, generate_jobs
        from repro.sched.scheduler import FacilityScheduler

        system = SpiderSystem(mini_spec(), seed=7, build_clients=False)
        jobs = generate_jobs(
            JobMix(), duration=20_000.0, seed=11,
            reference_bandwidth=system.aggregate_bandwidth(fs_level=True))
        plan = FaultPlan.random(system, duration=20_000.0, n_faults=3,
                                seed=5)
        sched = FacilityScheduler(system, jobs, fault_plan=plan, seed=3,
                                  remediation=policy)
        return sched.run(), sched.remediation_outcome

    def test_outcome_recorded_and_deterministic(self):
        r1, o1 = self._run(RemediationPolicy(seed=3))
        r2, o2 = self._run(RemediationPolicy(seed=3))
        assert o1 is not None and o1.n_faults == 3
        assert r1 == r2
        assert o1 == o2

    def test_no_policy_no_outcome(self):
        _result, outcome = self._run(None)
        assert outcome is None


class TestRemediationRecordMath:
    def test_censored_record_is_incomplete(self):
        # A fault injected just before the horizon leaves the pipeline
        # open; finalize must censor it instead of inventing timestamps.
        system = fresh_system()
        fault = PlannedFault(time=39_990.0, fault=FaultClass.DISK_SLOW,
                             target=0)
        plan = FaultPlan((fault,))
        result = FaultCampaign(system, plan, duration=40_000.0,
                               remediation=RemediationPolicy(seed=1)).run()
        rec = result.remediation.records[0]
        assert not rec.completed
        assert math.isinf(rec.verified_at)
        assert result.remediation.n_applied == 0
