"""LustreDU and parallel-tool tests: the Lesson 19 cost asymmetries."""

import pytest

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.tools.lustredu import LustreDu, client_du_cost
from repro.tools.ptools import ParallelTool, SerialTool, ToolComparison
from repro.units import DAY, MiB, TB


@pytest.fixture
def fs():
    osts = [Ost(i, OstSpec(capacity_bytes=16 * TB)) for i in range(8)]
    fs = LustreFilesystem("testfs", osts)
    fs.mkdir("/projA", now=0.0)
    fs.mkdir("/projB", now=0.0)
    for i in range(200):
        proj = "projA" if i % 2 == 0 else "projB"
        fs.create_file(f"/{proj}/f{i:03d}", now=float(i), size=(i + 1) * MiB,
                       owner=f"user{i % 3}", project=proj)
    return fs


class TestLustreDu:
    def test_sweep_totals_match_namespace(self, fs):
        du = LustreDu(fs)
        snap = du.sweep(now=DAY)
        assert snap.n_files == 200
        total = sum(snap.bytes_by_project.values())
        assert total == fs.namespace.total_bytes()

    def test_query_by_project_owner_dir(self, fs):
        du = LustreDu(fs)
        du.sweep(now=DAY)
        a = du.query(project="projA")
        b = du.query(project="projB")
        assert a + b == du.query()
        assert du.query(top_dir="/projA") == a
        by_owner = sum(du.query(owner=f"user{i}") for i in range(3))
        assert by_owner == du.query()

    def test_query_before_sweep_fails(self, fs):
        with pytest.raises(RuntimeError):
            LustreDu(fs).query()

    def test_staleness(self, fs):
        du = LustreDu(fs)
        assert du.staleness(now=0.0) == float("inf")
        du.sweep(now=100.0)
        assert du.staleness(now=250.0) == 150.0

    def test_sweep_cheaper_than_client_du(self, fs):
        """The Lesson 19 asymmetry: server-side sweep MDS cost is orders of
        magnitude below a client-side per-file stat storm."""
        du = LustreDu(fs)
        snap = du.sweep(now=0.0)
        _total, client_cost = client_du_cost(fs)
        assert client_cost > 50 * snap.sweep_mds_seconds

    def test_queries_cost_no_mds_time(self, fs):
        du = LustreDu(fs)
        du.sweep(now=0.0)
        before = fs.mds.busy_seconds
        du.query(project="projA")
        assert fs.mds.busy_seconds == before

    def test_validation(self, fs):
        with pytest.raises(ValueError):
            LustreDu(fs, sweep_interval=0)


class TestParallelTools:
    def test_serial_copy_accounts_walk_latency_stream(self, fs):
        run = SerialTool(fs).copy("/projA")
        assert run.n_files == 100
        assert run.total_bytes == fs.namespace.total_bytes("/projA")
        assert run.wall_seconds > 0

    def test_parallel_copy_speedup(self, fs):
        serial = SerialTool(fs).copy("/projA")
        parallel = ParallelTool(fs, n_workers=16).copy("/projA")
        cmp = ToolComparison(serial, parallel)
        assert cmp.speedup > 4.0

    def test_speedup_saturates_at_pfs_bandwidth(self, fs):
        """More workers stop helping once they outrun the file system —
        the crossover E13 reports."""
        slow_pfs = 2 * 10**9  # 2 GB/s aggregate
        t16 = ParallelTool(fs, 16, pfs_aggregate_bw=slow_pfs).copy("/projA")
        t256 = ParallelTool(fs, 256, pfs_aggregate_bw=slow_pfs).copy("/projA")
        assert t256.wall_seconds > 0.5 * t16.wall_seconds  # sub-linear now

    def test_find_speedup_is_latency_bound(self, fs):
        serial = SerialTool(fs).find("/")
        parallel = ParallelTool(fs, n_workers=8).find("/")
        assert ToolComparison(serial, parallel).speedup > 4.0
        assert parallel.total_bytes == 0

    def test_archive_mirrors_copy(self, fs):
        t = SerialTool(fs)
        assert t.archive("/projA").wall_seconds > t.copy("/projA").wall_seconds

    def test_makespan_greedy_vs_single(self, fs):
        p1 = ParallelTool(fs, n_workers=1)
        p8 = ParallelTool(fs, n_workers=8)
        assert p8.copy("/").wall_seconds < p1.copy("/").wall_seconds

    def test_comparison_row(self, fs):
        cmp = ToolComparison(SerialTool(fs).find("/"),
                             ParallelTool(fs, 8).find("/"))
        row = cmp.row()
        assert row[0].startswith("dfind")

    def test_validation(self, fs):
        with pytest.raises(ValueError):
            ParallelTool(fs, n_workers=0)


class TestSweepOrderingDeterminism:
    """DuSnapshot must not depend on file-creation order: the sweep walks
    the namespace in sorted order, so even the *iteration order* of the
    aggregation dicts is pinned (same first-seen sequence)."""

    def _build(self, order):
        osts = [Ost(i, OstSpec(capacity_bytes=16 * TB)) for i in range(4)]
        fs = LustreFilesystem("perm", osts)
        for proj in ("projA", "projB", "projC"):
            fs.mkdir(f"/{proj}", now=0.0)
        for i in order:
            proj = f"proj{'ABC'[i % 3]}"
            fs.create_file(f"/{proj}/f{i:03d}", now=float(i),
                           size=(i + 1) * MiB, owner=f"user{i % 2}",
                           project=proj)
        return fs

    def test_snapshot_identical_across_insertion_permutations(self):
        base = list(range(30))
        ref = LustreDu(self._build(base)).sweep(now=DAY)
        for order in (list(reversed(base)),
                      base[1::2] + base[0::2],
                      base[15:] + base[:15]):
            snap = LustreDu(self._build(order)).sweep(now=DAY)
            assert snap == ref
            # Insertion-order-sensitive surface: dict iteration order.
            assert list(snap.bytes_by_top_dir) == list(ref.bytes_by_top_dir)
            assert list(snap.bytes_by_owner) == list(ref.bytes_by_owner)
            assert list(snap.bytes_by_project) == list(ref.bytes_by_project)
