"""Router placement tests: Figure 2 structure and placement quality."""

import numpy as np
import pytest

from repro.core.placement import (
    CABINET_COLS,
    CABINET_ROWS,
    Placement,
    PlacementSpec,
    clustered_placement,
    evenly_spaced_placement,
    render_cabinet_map,
)
from repro.network.torus import TITAN_TORUS, Torus3D


class TestSpec:
    def test_defaults_give_440_routers(self):
        spec = PlacementSpec()
        assert spec.n_routers == 440
        assert spec.n_groups == 9

    def test_leaves_of_group_cover_all(self):
        spec = PlacementSpec()
        leaves = [l for g in range(spec.n_groups) for l in spec.leaves_of_group(g)]
        assert sorted(leaves) == list(range(36))

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementSpec(n_modules=0)
        with pytest.raises(ValueError):
            PlacementSpec(n_leaves=37)  # not divisible by 4


class TestEvenPlacement:
    def test_module_coords_valid(self):
        torus = Torus3D(TITAN_TORUS)
        placement = evenly_spaced_placement()
        for coord in placement.module_coords:
            assert torus.contains(coord)

    def test_each_module_serves_four_distinct_leaves(self):
        placement = evenly_spaced_placement()
        by_coord = {}
        for r in placement.routers:
            by_coord.setdefault((r.coord, r.name[:6]), []).append(r.leaf)
        for m in range(len(placement.module_coords)):
            leaves = [r.leaf for r in placement.routers[4 * m:4 * m + 4]]
            assert len(set(leaves)) == 4

    def test_groups_interleaved_across_x(self):
        """Adjacent modules belong to different groups — Figure 2's
        color-spread pattern."""
        placement = evenly_spaced_placement()
        groups = placement.module_group
        same_adjacent = sum(a == b for a, b in zip(groups, groups[1:]))
        assert same_adjacent == 0

    def test_every_leaf_served_by_many_routers(self):
        placement = evenly_spaced_placement()
        per_leaf = {}
        for r in placement.routers:
            per_leaf[r.leaf] = per_leaf.get(r.leaf, 0) + 1
        assert min(per_leaf.values()) >= 10  # ~440/36 each
        assert max(per_leaf.values()) <= 14


class TestPlacementQuality:
    def test_even_beats_clustered_on_locality(self):
        """Lesson 14: the engineered spread reduces the client-to-router
        distance vs packing the modules in a corner."""
        torus = Torus3D(TITAN_TORUS)
        rng = np.random.default_rng(0)
        clients = [
            (int(rng.integers(0, 25)), int(rng.integers(0, 16)),
             int(rng.integers(0, 24)))
            for _ in range(150)
        ]
        even = evenly_spaced_placement().mean_client_distance(torus, clients)
        clustered = clustered_placement().mean_client_distance(torus, clients)
        assert even < 0.8 * clustered

    def test_mean_distance_empty_clients(self):
        assert evenly_spaced_placement().mean_client_distance(
            Torus3D(TITAN_TORUS), []) == 0.0


class TestCabinetMap:
    def test_render_shape(self):
        art = render_cabinet_map(evenly_spaced_placement())
        lines = art.splitlines()
        assert len(lines) == CABINET_ROWS + 2  # header + 8 rows + legend
        # Row lines contain only group letters and dots after the margin.
        for line in lines[1:-1]:
            body = line[4:]
            assert len(body) == CABINET_COLS

    def test_render_has_modules(self):
        art = render_cabinet_map(evenly_spaced_placement())
        letters = sum(c.isalpha() for line in art.splitlines()[1:-1]
                      for c in line[4:])
        # 110 modules over 200 cabinets: some cabinets may host two modules
        # (overwritten cell), so the letter count is bounded by both.
        assert 80 <= letters <= 110

    def test_cabinet_of_module(self):
        placement = evenly_spaced_placement()
        cx, cy = placement.cabinet_of_module(0)
        assert 0 <= cx < CABINET_COLS and 0 <= cy < CABINET_ROWS
