"""3D torus tests: coordinates, wraparound, dimension-ordered routing."""

import numpy as np
import pytest

from repro.network.torus import TITAN_TORUS, Torus3D, TorusSpec


@pytest.fixture
def torus():
    return Torus3D(TorusSpec(dims=(5, 4, 6)))


class TestSpec:
    def test_titan_dimensions(self):
        assert TITAN_TORUS.dims == (25, 16, 24)
        assert TITAN_TORUS.n_routers == 9600
        assert TITAN_TORUS.n_nodes == 19_200  # two nodes per Gemini

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusSpec(dims=(0, 4, 4))
        with pytest.raises(ValueError):
            TorusSpec(link_bw=0)


class TestCoordinates:
    def test_index_roundtrip(self, torus):
        for coord in torus.all_coords():
            assert torus.coord_of(torus.node_index(coord)) == coord

    def test_out_of_range_rejected(self, torus):
        with pytest.raises(ValueError):
            torus.node_index((5, 0, 0))
        with pytest.raises(ValueError):
            torus.coord_of(5 * 4 * 6)


class TestDistance:
    def test_zero_to_self(self, torus):
        assert torus.distance((1, 2, 3), (1, 2, 3)) == 0

    def test_wraparound_shorter(self, torus):
        # X ring of 5: 0 -> 4 is one hop backward, not four forward.
        assert torus.distance((0, 0, 0), (4, 0, 0)) == 1

    def test_symmetric(self, torus):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = tuple(rng.integers(0, d) for d in torus.dims)
            b = tuple(rng.integers(0, d) for d in torus.dims)
            assert torus.distance(a, b) == torus.distance(b, a)

    def test_vectorized_matches_scalar(self, torus):
        src = (2, 1, 3)
        dsts = np.array(list(torus.all_coords()))
        vec = torus.distances_from(src, dsts)
        for coord, d in zip(torus.all_coords(), vec):
            assert d == torus.distance(src, coord)


class TestRouting:
    def test_route_endpoints(self, torus):
        path = torus.route((0, 0, 0), (3, 2, 5))
        assert path[0] == (0, 0, 0)
        assert path[-1] == (3, 2, 5)

    def test_route_length_equals_distance(self, torus):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = tuple(rng.integers(0, d) for d in torus.dims)
            b = tuple(rng.integers(0, d) for d in torus.dims)
            assert len(torus.route(a, b)) - 1 == torus.distance(a, b)

    def test_route_steps_are_single_hop(self, torus):
        path = torus.route((0, 0, 0), (4, 3, 5))
        for u, v in zip(path, path[1:]):
            assert torus.distance(u, v) == 1

    def test_dimension_order(self, torus):
        # X corrects before Y before Z.
        path = torus.route((0, 0, 0), (2, 2, 0))
        xs = [p[0] for p in path]
        assert xs[:3] == [0, 1, 2]  # X first

    def test_route_links_count(self, torus):
        links = torus.route_links((0, 0, 0), (2, 1, 1))
        assert len(links) == torus.distance((0, 0, 0), (2, 1, 1))

    def test_link_loads_census(self, torus):
        pairs = [((0, 0, 0), (1, 0, 0))] * 3
        loads = torus.link_loads(pairs)
        assert loads[("gl", 0, 0, 0, 0, 1)] == 3

    def test_component_names(self, torus):
        assert torus.injection_component((1, 2, 3)) == "inj:1,2,3"
        assert Torus3D.link_component(("gl", 1, 2, 3, 0, 1)) == "gl:1,2,3:0+"
        assert Torus3D.link_component(("gl", 1, 2, 3, 2, -1)) == "gl:1,2,3:2-"
