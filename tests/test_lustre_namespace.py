"""Namespace and striping tests."""

import pytest

from repro.lustre.namespace import Namespace, NamespaceError, StripeLayout
from repro.units import MiB


class TestStripeLayout:
    def test_even_distribution(self):
        layout = StripeLayout(osts=(0, 1, 2, 3), stripe_size=MiB)
        shares = layout.ost_share(8 * MiB)
        assert shares == {0: 2 * MiB, 1: 2 * MiB, 2: 2 * MiB, 3: 2 * MiB}

    def test_remainder_goes_to_leading_stripes(self):
        layout = StripeLayout(osts=(0, 1), stripe_size=MiB)
        shares = layout.ost_share(3 * MiB + 10)
        assert shares[0] == 2 * MiB
        assert shares[1] == MiB + 10
        assert sum(shares.values()) == 3 * MiB + 10

    def test_single_ost(self):
        layout = StripeLayout(osts=(7,))
        assert layout.ost_share(123456) == {7: 123456}

    def test_share_conserves_bytes(self):
        layout = StripeLayout(osts=(0, 1, 2), stripe_size=64 * 1024)
        for size in (0, 1, 64 * 1024, 1_000_000, 10_000_001):
            assert sum(layout.ost_share(size).values()) == size

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(osts=())
        with pytest.raises(ValueError):
            StripeLayout(osts=(0,), stripe_size=0)
        with pytest.raises(ValueError):
            StripeLayout(osts=(0,)).ost_share(-1)


class TestNamespace:
    def test_root_exists(self):
        ns = Namespace()
        assert "/" in ns
        assert ns.get("/").is_dir

    def test_mkdir_and_create(self):
        ns = Namespace()
        ns.mkdir("/proj", now=1.0)
        layout = StripeLayout(osts=(0,))
        entry = ns.create("/proj/a.dat", layout, now=2.0, size=100)
        assert entry.size == 100
        assert ns.n_files == 1
        assert ns.listdir("/proj") == ["/proj/a.dat"]

    def test_mkdir_parents(self):
        ns = Namespace()
        ns.mkdir("/a/b/c", parents=True)
        assert "/a/b" in ns

    def test_create_without_parent_fails(self):
        ns = Namespace()
        with pytest.raises(NamespaceError):
            ns.create("/missing/x", StripeLayout(osts=(0,)))

    def test_duplicate_create_fails(self):
        ns = Namespace()
        layout = StripeLayout(osts=(0,))
        ns.create("/x", layout)
        with pytest.raises(NamespaceError):
            ns.create("/x", layout)

    def test_relative_path_rejected(self):
        ns = Namespace()
        with pytest.raises(NamespaceError):
            ns.get("x")

    def test_write_updates_size_and_mtime(self):
        ns = Namespace()
        ns.create("/f", StripeLayout(osts=(0,)), now=0.0)
        ns.write("/f", 500, now=10.0)
        entry = ns.get("/f")
        assert entry.size == 500 and entry.mtime == 10.0

    def test_read_updates_atime(self):
        ns = Namespace()
        ns.create("/f", StripeLayout(osts=(0,)), now=0.0)
        ns.read("/f", now=99.0)
        assert ns.get("/f").atime == 99.0

    def test_last_touched_is_max_of_times(self):
        ns = Namespace()
        entry = ns.create("/f", StripeLayout(osts=(0,)), now=5.0)
        assert entry.last_touched() == 5.0
        ns.read("/f", now=50.0)
        assert entry.last_touched() == 50.0

    def test_unlink_file(self):
        ns = Namespace()
        ns.create("/f", StripeLayout(osts=(0,)))
        ns.unlink("/f")
        assert "/f" not in ns
        assert ns.n_files == 0

    def test_unlink_nonempty_dir_fails(self):
        ns = Namespace()
        ns.mkdir("/d")
        ns.create("/d/f", StripeLayout(osts=(0,)))
        with pytest.raises(NamespaceError):
            ns.unlink("/d")

    def test_unlink_root_fails(self):
        with pytest.raises(NamespaceError):
            Namespace().unlink("/")

    def test_walk_depth_first_complete(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.mkdir("/a/b")
        layout = StripeLayout(osts=(0,))
        ns.create("/a/x", layout)
        ns.create("/a/b/y", layout)
        paths = [e.path for e in ns.walk()]
        assert set(paths) == {"/", "/a", "/a/b", "/a/x", "/a/b/y"}

    def test_files_and_total_bytes(self):
        ns = Namespace()
        layout = StripeLayout(osts=(0,))
        ns.create("/f1", layout, size=10)
        ns.create("/f2", layout, size=20)
        assert ns.total_bytes() == 30
        assert len(list(ns.files())) == 2

    def test_select(self):
        ns = Namespace()
        layout = StripeLayout(osts=(0,))
        ns.create("/big", layout, size=1000)
        ns.create("/small", layout, size=1)
        big = ns.select(lambda f: f.size > 100)
        assert [f.path for f in big] == ["/big"]

    def test_path_normalization(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.create("/a//f", StripeLayout(osts=(0,)))
        assert "/a/f" in ns


class TestOrderingDeterminism:
    """Insertion order must be invisible: listdir and walk sort children,
    so any permutation of creates yields identical views.  The metatier
    sharded namespace inherits this contract shard by shard."""

    NAMES = ["zeta", "alpha", "mid", "b", "a0", "A9"]

    def _build(self, order):
        ns = Namespace("perm")
        ns.mkdir("/d", now=0.0, parents=True)
        for name in order:
            ns.create(f"/d/{name}", None, now=1.0)
        return ns

    def test_listdir_identical_across_insertion_permutations(self):
        import itertools
        ref = self._build(self.NAMES).listdir("/d")
        assert ref == sorted(f"/d/{n}" for n in self.NAMES)
        for perm in itertools.permutations(self.NAMES, len(self.NAMES)):
            assert self._build(perm).listdir("/d") == ref

    def test_walk_order_identical_across_insertion_permutations(self):
        ref = [e.path for e in self._build(self.NAMES).walk()]
        reversed_ns = self._build(list(reversed(self.NAMES)))
        assert [e.path for e in reversed_ns.walk()] == ref
