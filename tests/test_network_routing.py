"""Flowlet routing unit tests: spec validation, the feed, re-hash
hysteresis, fingerprint dampening, and the backpressure debounce."""

import math

import pytest

from repro.network.infiniband import FabricSpec, InfinibandFabric
from repro.network.lnet import LnetConfig, RouterInfo
from repro.network.routing import (
    BackpressureController,
    FlowletRouting,
    FlowletSpec,
    LinkStatsFeed,
    LINK_UTIL_METRIC,
)
from repro.network.torus import AXIS_ORDERS, Torus3D, TorusSpec


@pytest.fixture
def config():
    torus = Torus3D(TorusSpec(dims=(8, 8, 8)))
    fabric = InfinibandFabric(FabricSpec(n_leaf_switches=2))
    routers = [
        RouterInfo("r0", (0, 0, 0), leaf=0),
        RouterInfo("r1", (4, 4, 4), leaf=0),
        RouterInfo("r2", (0, 4, 0), leaf=1),
        RouterInfo("r3", (4, 0, 4), leaf=1),
    ]
    for r in routers:
        fabric.attach_host(r.name, r.leaf)
    return LnetConfig(torus, fabric, routers)


def path_comps(policy, client, router_name, axis):
    cfg = policy.config
    idx = [r.name for r in cfg.routers].index(router_name)
    return policy._path_components(client, idx, axis)


class TestFlowletSpec:
    def test_defaults_valid(self):
        spec = FlowletSpec()
        assert 0 < spec.low_water < spec.threshold

    @pytest.mark.parametrize("kw", [
        dict(threshold=0.5, low_water=0.6),   # inverted band
        dict(threshold=2.0),                  # above the 1.5 ceiling
        dict(low_water=0.0),
        dict(min_dwell_s=-1.0),
        dict(stale_after_s=-0.1),
        dict(reroute_dwell_s=-5.0),
        dict(slack=-1),
        dict(engage_windows=0),
        dict(release_windows=0),
    ])
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            FlowletSpec(**kw)


class TestLinkStatsFeed:
    def test_unobserved_reads_idle_and_infinitely_old(self):
        feed = LinkStatsFeed()
        value, age = feed.read("gl:0,0,0:0+", now=100.0)
        assert value == 0.0 and age == math.inf

    def test_observe_then_read_ages(self):
        feed = LinkStatsFeed()
        feed.observe("router:r0", 0.7, sampled_at=40.0)
        assert feed.read("router:r0", now=100.0) == (0.7, 60.0)

    def test_ingest_takes_only_link_util_rows(self):
        feed = LinkStatsFeed()
        view = {
            (LINK_UTIL_METRIC, "gl:0,0,0:0+"): (0.9, 30.0),
            (LINK_UTIL_METRIC, "router:r0"): (0.2, 30.0),
            ("mon.cable_ok", "oss0"): (1.0, 30.0),
        }
        assert feed.ingest(view) == 2
        assert feed.read("gl:0,0,0:0+", now=30.0) == (0.9, 0.0)
        assert len(feed) == 2

    def test_last_known_good_overwrites(self):
        feed = LinkStatsFeed()
        feed.observe("router:r0", 0.9, sampled_at=10.0)
        feed.observe("router:r0", 0.1, sampled_at=20.0)
        assert feed.read("router:r0", now=20.0) == (0.1, 0.0)


class TestFlowletAssignment:
    def test_select_router_is_sticky(self, config):
        policy = FlowletRouting(config)
        first = policy.select_router((1, 1, 1), dst_leaf=0)
        for _ in range(5):
            assert policy.select_router((1, 1, 1), dst_leaf=0) is first

    def test_new_flowlets_start_on_plain_dimension_order(self, config):
        policy = FlowletRouting(config)
        router = policy.select_router((1, 1, 1), dst_leaf=0)
        assert policy.axis_order((1, 1, 1), router.coord) == (0, 1, 2)

    def test_same_seed_same_assignments(self, config):
        keys = [((x, y, 0), leaf) for x in range(4) for y in range(4)
                for leaf in (0, 1)]
        picks = []
        for _ in range(2):
            policy = FlowletRouting(config, spec=FlowletSpec(seed=9))
            picks.append([policy.select_router(c, leaf).name
                          for c, leaf in keys])
        assert picks[0] == picks[1]

    def test_offline_assignment_forces_reassign(self, config):
        policy = FlowletRouting(config, spec=FlowletSpec(slack=100))
        name = policy.select_router((0, 0, 1), dst_leaf=0).name
        config.set_router_online(name, False)
        moved = policy.select_router((0, 0, 1), dst_leaf=0)
        assert moved.name != name
        assert moved.leaf == 0

    def test_reset_keeps_decided_tables(self, config):
        policy = FlowletRouting(config)
        before = policy.select_router((1, 1, 1), dst_leaf=0).name
        policy.reset()
        assert policy.select_router((1, 1, 1), dst_leaf=0).name == before


class TestRehash:
    def hot_feed(self, policy, client, router_name, axis, now, value=1.0):
        for comp in path_comps(policy, client, router_name, axis):
            policy.feed.observe(comp, value, sampled_at=now)

    def test_cool_path_never_moves(self, config):
        policy = FlowletRouting(config)
        client = (1, 1, 1)
        policy.select_router(client, dst_leaf=0)
        assert policy.refresh(100.0) == 0
        assert policy.rehashes == 0

    def test_hot_path_rehashes_and_bumps_epoch(self, config):
        policy = FlowletRouting(config, spec=FlowletSpec(slack=100, seed=3))
        client = (1, 1, 1)
        name = policy.select_router(client, dst_leaf=0).name
        fp = policy.fingerprint()
        self.hot_feed(policy, client, name, 0, now=100.0)
        assert policy.refresh(100.0) == 1
        assert policy.rehashes == 1
        assert policy.fingerprint() != fp  # epoch rode into the fingerprint
        moved = policy.select_router(client, dst_leaf=0)
        axis = policy.axis_order(client, moved.coord)
        assert (moved.name, axis) != (name, (0, 1, 2))

    def test_min_dwell_pins_a_moved_flowlet(self, config):
        spec = FlowletSpec(slack=100, min_dwell_s=90.0, seed=3)
        policy = FlowletRouting(config, spec=spec)
        client = (1, 1, 1)
        name = policy.select_router(client, dst_leaf=0).name
        self.hot_feed(policy, client, name, 0, now=100.0)
        assert policy.refresh(100.0) == 1
        # Heat the *new* path too: still pinned until the dwell expires.
        moved = policy.select_router(client, dst_leaf=0)
        axis_idx = AXIS_ORDERS.index(policy.axis_order(client, moved.coord))
        self.hot_feed(policy, client, moved.name, axis_idx, now=150.0)
        assert policy.refresh(150.0) == 0
        assert policy.refresh(191.0) == 1

    def test_desperation_widening_escapes_a_saturated_near_zone(self, config):
        # slack 0 collapses the leaf-0 zone to r0 alone; every axis order
        # to r0 shares its saturated single-hop link, so only the widened
        # rescore (distance cap lifted) can reach the cool r1.
        policy = FlowletRouting(config, spec=FlowletSpec(slack=0, seed=1))
        client = (0, 0, 1)
        assert policy.select_router(client, dst_leaf=0).name == "r0"
        for axis in range(len(AXIS_ORDERS)):
            self.hot_feed(policy, client, "r0", axis, now=100.0)
        assert policy.refresh(100.0) == 1
        assert policy.select_router(client, dst_leaf=0).name == "r1"

    def test_stale_reads_are_tolerated_but_counted(self, config):
        policy = FlowletRouting(config, spec=FlowletSpec(stale_after_s=240.0))
        client = (1, 1, 1)
        name = policy.select_router(client, dst_leaf=0).name
        comps = path_comps(policy, client, name, 0)
        policy.feed.observe(comps[0], 0.2, sampled_at=0.0)
        policy.refresh(1000.0)  # age 1000 > stale_after
        assert policy.stale_reads >= 1
        # Unobserved components read as idle, not stale.
        assert policy.stale_reads <= len(comps)


class TestFlapDampening:
    def test_fingerprint_commits_only_after_dwell(self, config):
        spec = FlowletSpec(reroute_dwell_s=180.0)
        policy = FlowletRouting(config, spec=spec)
        fp0 = policy.fingerprint()
        config.set_router_online("r0", False)
        policy.refresh(10.0)   # change noticed, pending
        assert policy.fingerprint() == fp0
        policy.refresh(100.0)  # held 90 s < dwell: still pending
        assert policy.fingerprint() == fp0
        policy.refresh(200.0)  # held 190 s >= dwell: committed
        assert policy.fingerprint() != fp0
        assert policy.reroute_commits == 1

    def test_bounce_within_dwell_never_commits(self, config):
        spec = FlowletSpec(reroute_dwell_s=180.0)
        policy = FlowletRouting(config, spec=spec)
        fp0 = policy.fingerprint()
        for k in range(8):  # down/up every 30 s, far faster than dwell
            config.set_router_online("r0", k % 2 == 1)
            policy.refresh(10.0 + 30.0 * k)
        assert policy.fingerprint() == fp0
        assert policy.reroute_commits == 0

    def test_commit_purges_assignments_through_dead_routers(self, config):
        spec = FlowletSpec(reroute_dwell_s=0.0, slack=100)
        policy = FlowletRouting(config, spec=spec)
        victim = policy.select_router((0, 0, 1), dst_leaf=0).name
        config.set_router_online(victim, False)
        policy.refresh(10.0)   # change noticed (pending)
        policy.refresh(10.0)   # zero dwell: committed, purged
        assert all(policy.config.routers[idx].name != victim
                   for idx in policy._assigned.values())


class FakeArbiter:
    def __init__(self):
        self.calls = []

    def set_degraded(self, active):
        self.calls.append(bool(active))


class TestBackpressureController:
    def make(self, **kw):
        feed = LinkStatsFeed()
        spec = FlowletSpec(engage_windows=2, release_windows=3)
        return feed, BackpressureController(
            feed, ["gl:a", "gl:b"], spec=spec, **kw)

    def test_empty_watch_list_rejected(self):
        with pytest.raises(ValueError):
            BackpressureController(LinkStatsFeed(), [])

    def test_engage_needs_consecutive_hot_windows(self):
        feed, ctl = self.make()
        feed.observe("gl:a", 0.95, 0.0)
        assert ctl.update(0.0) is False        # hot streak 1 of 2
        assert ctl.update(60.0) is True        # hot streak 2: engage
        assert ctl.engagements == 1

    def test_hot_streak_resets_on_a_cool_window(self):
        feed, ctl = self.make()
        feed.observe("gl:a", 0.95, 0.0)
        ctl.update(0.0)
        feed.observe("gl:a", 0.10, 60.0)
        ctl.update(60.0)                       # streak broken
        feed.observe("gl:a", 0.95, 120.0)
        assert ctl.update(120.0) is False      # needs two hot again

    def test_release_needs_consecutive_cool_windows(self):
        feed, ctl = self.make()
        feed.observe("gl:a", 0.95, 0.0)
        ctl.update(0.0)
        ctl.update(60.0)
        assert ctl.engaged
        feed.observe("gl:a", 0.10, 120.0)
        for t in (120.0, 180.0):
            assert ctl.update(t) is True       # cool 1, 2 of 3
        assert ctl.update(240.0) is False      # cool 3: release
        assert ctl.releases == 1

    def test_deadband_holds_engagement(self):
        # Between low_water and threshold: not hot, not cool — stay put.
        feed, ctl = self.make()
        feed.observe("gl:a", 0.95, 0.0)
        ctl.update(0.0)
        ctl.update(60.0)
        feed.observe("gl:a", 0.70, 120.0)
        for t in (120.0, 180.0, 240.0, 300.0):
            assert ctl.update(t) is True

    def test_arbiter_is_driven_on_transitions(self):
        arb = FakeArbiter()
        feed, ctl = self.make(arbiter=arb)
        feed.observe("gl:a", 0.95, 0.0)
        ctl.update(0.0)
        ctl.update(60.0)
        feed.observe("gl:a", 0.10, 120.0)
        ctl.update(120.0)
        ctl.update(180.0)
        ctl.update(240.0)
        assert arb.calls == [True, False]

    def test_peak_reads_the_watched_set(self):
        feed, ctl = self.make()
        feed.observe("gl:a", 0.3, 0.0)
        feed.observe("gl:b", 0.8, 0.0)
        feed.observe("gl:unwatched", 1.0, 0.0)
        assert ctl.peak(0.0) == 0.8
