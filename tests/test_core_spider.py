"""Spider system builder tests: paper-pinned inventory and calibration."""

import numpy as np
import pytest

from repro.core.spider import SPIDER1, SPIDER2, SpiderSystem, build_spider1, build_spider2
from repro.units import GB, PB, TB


class TestSpecArithmetic:
    def test_spider2_inventory_matches_paper(self):
        assert SPIDER2.n_disks == 20_160
        assert SPIDER2.n_osts == 2_016
        assert SPIDER2.n_osses == 288
        assert SPIDER2.placement.n_routers == 440
        assert SPIDER2.fabric.n_leaf_switches == 36
        assert SPIDER2.n_namespaces == 2
        assert SPIDER2.n_compute_nodes == 18_688

    def test_spider1_inventory(self):
        assert SPIDER1.n_disks == 13_440
        assert SPIDER1.n_osts == 1_344
        assert SPIDER1.n_namespaces == 4
        assert SPIDER1.ssu.n_enclosures == 5  # the incident geometry

    def test_validation_namespace_divisibility(self):
        with pytest.raises(ValueError):
            from dataclasses import replace
            replace(SPIDER2, n_namespaces=5)


class TestMiniBuild:
    def test_component_counts(self, mini_system):
        spec = mini_system.spec
        assert len(mini_system.osts) == spec.n_osts
        assert len(mini_system.osses) == spec.n_osses
        assert len(mini_system.clients) == spec.n_compute_nodes
        assert len(mini_system.filesystems) == spec.n_namespaces

    def test_ost_indices_dense_and_sorted(self, mini_system):
        indices = [o.index for o in mini_system.osts]
        assert indices == list(range(mini_system.spec.n_osts))

    def test_oss_lookup(self, mini_system):
        for ost in mini_system.osts:
            oss = mini_system.oss_of_ost(ost.index)
            assert ost.index in oss.ost_indices
            assert oss.ssu_index == ost.ssu_index

    def test_filesystem_partition(self, mini_system):
        seen = set()
        for fs in mini_system.filesystems.values():
            for ost in fs.osts:
                assert ost.index not in seen
                seen.add(ost.index)
                assert mini_system.filesystem_of_ost(ost.index) is fs
        assert len(seen) == mini_system.spec.n_osts

    def test_clients_have_valid_coords(self, mini_system):
        for client in mini_system.clients:
            assert mini_system.torus.contains(client.coord)

    def test_clients_avoid_router_modules(self, mini_system):
        module_coords = set(mini_system.placement.module_coords)
        for client in mini_system.clients:
            assert client.coord not in module_coords

    def test_raw_bandwidth_vector(self, mini_system):
        bw = mini_system.raw_ost_bandwidths()
        assert bw.shape == (mini_system.spec.n_osts,)
        assert (bw > 0).all()

    def test_ost_flow_capacities_below_raw(self, mini_system):
        raw = mini_system.raw_ost_bandwidths(fs_level=True)
        caps = mini_system.ost_flow_capacities(fs_level=True)
        assert (caps <= raw + 1e-9).all()

    def test_upgrade_raises_fs_aggregate(self, mini_system):
        before = mini_system.aggregate_bandwidth(fs_level=True)
        mini_system.upgrade_controllers()
        after = mini_system.aggregate_bandwidth(fs_level=True)
        assert after > before

    def test_torus_too_small_raises(self):
        from tests.conftest import mini_spec
        from repro.network.torus import TorusSpec
        spec = mini_spec(torus=TorusSpec(dims=(2, 2, 2)), n_compute_nodes=128)
        with pytest.raises(ValueError):
            SpiderSystem(spec)


class TestSpider2Headlines:
    """The paper's headline numbers, on the full build (session fixture)."""

    def test_capacity_32pb(self, spider2_session):
        assert spider2_session.total_capacity_bytes() == pytest.approx(
            32.26 * PB, rel=0.01)

    def test_block_level_exceeds_1tbps(self, spider2_session):
        bw = spider2_session.aggregate_bandwidth(fs_level=False)
        assert bw > 1000 * GB
        assert bw < 1150 * GB  # not wildly over

    def test_namespace_pre_upgrade_320gbps(self, spider2_session):
        total_fs = spider2_session.aggregate_bandwidth(fs_level=True)
        per_namespace = total_fs / spider2_session.spec.n_namespaces
        assert per_namespace == pytest.approx(320 * GB, rel=0.02)

    def test_inventory_dict(self, spider2_session):
        inv = spider2_session.inventory()
        assert inv["disks"] == 20_160
        assert inv["osts"] == 2_016
        assert inv["routers"] == 440
        assert inv["clients"] == 18_688

    def test_spider1_aggregate_240gbps(self):
        s1 = build_spider1(build_clients=False)
        bw = s1.aggregate_bandwidth(fs_level=True)
        assert bw == pytest.approx(240 * GB, rel=0.05)
        assert s1.total_capacity_bytes() == pytest.approx(10.75 * PB, rel=0.01)


class TestSsuScalability:
    """§III-A: the SSU is the unit of scale — 'This structure provides the
    flexibility to grow the PFS in the future as needed.'"""

    def test_capacity_and_bandwidth_scale_linearly_in_ssus(self):
        from dataclasses import replace
        from tests.conftest import mini_spec

        base = SpiderSystem(mini_spec(), seed=1)
        grown_spec = mini_spec(n_ssus=8,
                               fabric=base.spec.fabric.__class__(
                                   n_leaf_switches=8, n_core_switches=2),
                               placement=base.spec.placement.__class__(
                                   n_modules=6, routers_per_module=4,
                                   n_leaves=8))
        grown = SpiderSystem(grown_spec, seed=1)
        assert grown.total_capacity_bytes() == 2 * base.total_capacity_bytes()
        ratio = (grown.aggregate_bandwidth(fs_level=False)
                 / base.aggregate_bandwidth(fs_level=False))
        # Raw (pre-culling) bandwidth carries slow-disk sampling noise; the
        # scaling is linear up to that spread.
        assert ratio == pytest.approx(2.0, rel=0.06)

    def test_spider1_namespace_partition(self):
        s1 = build_spider1(build_clients=False)
        assert len(s1.filesystems) == 4
        names = list(s1.filesystems)
        assert names[0].startswith("widow")
        sizes = {len(fs.osts) for fs in s1.filesystems.values()}
        assert sizes == {1344 // 4}
        # filesystem_of_ost agrees with the partition.
        for fs in s1.filesystems.values():
            for ost in fs.osts[:3]:
                assert s1.filesystem_of_ost(ost.index) is fs
