"""Server queue and token-bucket tests."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.resources import Server, TokenBucket


class TestServer:
    def test_single_server_serializes(self):
        engine = Engine()
        server = Server(engine, n_servers=1)
        done_times = []
        for _ in range(3):
            ev = server.submit(10.0)
            ev.on_trigger(lambda e: done_times.append(engine.now))
        engine.run()
        assert done_times == [10.0, 20.0, 30.0]

    def test_multi_server_parallelism(self):
        engine = Engine()
        server = Server(engine, n_servers=3)
        done_times = []
        for _ in range(3):
            server.submit(10.0).on_trigger(lambda e: done_times.append(engine.now))
        engine.run()
        assert done_times == [10.0, 10.0, 10.0]

    def test_fifo_order_and_value(self):
        engine = Engine()
        server = Server(engine, n_servers=1)
        order = []
        for name in "abc":
            server.submit(1.0, value=name).on_trigger(lambda e: order.append(e.value))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_stats(self):
        engine = Engine()
        server = Server(engine, n_servers=1)
        server.submit(4.0)
        server.submit(6.0)
        engine.run()
        assert server.stats.completions == 2
        assert server.stats.busy_time == pytest.approx(10.0)
        assert server.stats.mean_service == pytest.approx(5.0)
        # second job waited 4 s
        assert server.stats.mean_wait == pytest.approx(2.0)
        assert server.utilization() == pytest.approx(1.0)

    def test_validation(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Server(engine, n_servers=0)
        server = Server(engine)
        with pytest.raises(SimulationError):
            server.submit(-1.0)


class TestTokenBucket:
    def test_immediate_grant_within_capacity(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate=10.0, capacity=100.0)
        ev = bucket.acquire(50.0)
        assert ev.triggered

    def test_waits_for_refill(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate=10.0, capacity=10.0)
        bucket.acquire(10.0)  # drains it
        ev = bucket.acquire(5.0)
        assert not ev.triggered
        engine.run()
        assert ev.triggered
        assert engine.now == pytest.approx(0.5)

    def test_fifo_no_starvation(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate=10.0, capacity=10.0)
        bucket.acquire(10.0)
        order = []
        big = bucket.acquire(8.0)
        big.on_trigger(lambda e: order.append("big"))
        small = bucket.acquire(1.0)
        small.on_trigger(lambda e: order.append("small"))
        engine.run()
        assert order == ["big", "small"]

    def test_oversize_request_rejected(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate=1.0, capacity=5.0)
        with pytest.raises(SimulationError):
            bucket.acquire(6.0)

    def test_tokens_capped_at_capacity(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate=100.0, capacity=10.0)
        engine.call_at(100.0, lambda: None)
        engine.run()
        assert bucket.tokens == pytest.approx(10.0)

    def test_validation(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            TokenBucket(engine, rate=0.0)
        with pytest.raises(SimulationError):
            TokenBucket(engine, rate=1.0, capacity=0.0)
