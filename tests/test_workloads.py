"""Workload generator tests: traces, checkpoint bursts, analytics, the
calibrated Spider mix, and S3D."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.units import GB, KiB, MiB
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace, time_to_checkpoint
from repro.workloads.mixed import spider_mixed_workload
from repro.workloads.model import RequestTrace, merge_traces
from repro.workloads.s3d import S3DApp


class TestRequestTrace:
    def make(self):
        return RequestTrace(
            times=[0.0, 1.0, 2.0, 3.0],
            sizes=[4 * KiB, MiB, 2 * MiB, 8 * KiB],
            is_write=[True, True, False, False],
        )

    def test_basic_stats(self):
        t = self.make()
        assert len(t) == 4
        assert t.duration == 3.0
        assert t.write_fraction_requests() == 0.5
        assert t.small_fraction() == 0.5
        assert t.megabyte_multiple_fraction() == 0.5

    def test_write_fraction_bytes(self):
        t = self.make()
        expected = (4 * KiB + MiB) / (4 * KiB + MiB + 2 * MiB + 8 * KiB)
        assert t.write_fraction_bytes() == pytest.approx(expected)

    def test_sorts_unordered_input(self):
        t = RequestTrace(times=[2.0, 0.0, 1.0], sizes=[1, 2, 3],
                         is_write=[True, True, True])
        assert list(t.times) == [0.0, 1.0, 2.0]
        assert list(t.sizes) == [2, 3, 1]

    def test_interarrival_and_idle(self):
        t = RequestTrace(times=[0.0, 0.001, 5.0], sizes=[1, 1, 1],
                         is_write=[1, 1, 1])
        gaps = t.interarrival_times()
        assert len(gaps) == 2
        idles = t.idle_times(busy_window=0.01)
        assert len(idles) == 1 and idles[0] == pytest.approx(4.999)

    def test_bandwidth_series(self):
        t = RequestTrace(times=[0.0, 0.5, 1.5], sizes=[100, 100, 200],
                         is_write=[True, True, True])
        times, bw = t.bandwidth_series(bin_seconds=1.0)
        assert bw[0] == pytest.approx(200.0)
        assert bw[1] == pytest.approx(200.0)

    def test_slice(self):
        t = self.make()
        window = t.slice(1.0, 3.0)
        assert len(window) == 2

    def test_empty_trace(self):
        t = RequestTrace(np.empty(0), np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=bool))
        assert t.duration == 0.0
        assert t.write_fraction_requests() == 0.0
        assert len(t.interarrival_times()) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RequestTrace([0.0], [1, 2], [True])

    def test_merge_preserves_counts_and_order(self):
        a = RequestTrace([0.0, 2.0], [1, 1], [True, True])
        b = RequestTrace([1.0], [2], [False])
        merged = merge_traces([a, b])
        assert len(merged) == 3
        assert (np.diff(merged.times) >= 0).all()
        assert list(merged.source) == [0, 1, 0]


class TestCheckpoint:
    def test_burst_volume(self, rng):
        app = CheckpointApp(n_procs=64, bytes_per_proc=16 * MiB,
                            interval=100.0, aggregate_bandwidth=1 * GB)
        trace = checkpoint_trace(app, duration=250.0, rng=rng)
        # 3 bursts (t=0, 100, 200): data + headers.
        expected = 3 * (app.checkpoint_bytes + app.n_procs * app.header_bytes)
        assert trace.total_bytes == expected
        assert trace.write_fraction_requests() == 1.0

    def test_data_requests_are_mib_multiples(self, rng):
        app = CheckpointApp(n_procs=8, bytes_per_proc=4 * MiB,
                            interval=50.0)
        trace = checkpoint_trace(app, duration=40.0, rng=rng)
        large = trace.sizes[trace.sizes >= MiB]
        assert (large % MiB == 0).all()

    def test_request_coarsening_preserves_bytes(self, rng):
        app = CheckpointApp(n_procs=256, bytes_per_proc=256 * MiB,
                            interval=7200.0)
        trace = checkpoint_trace(app, duration=100.0, rng=rng,
                                 max_requests_per_burst=1000)
        data_bytes = int(trace.sizes[trace.sizes >= MiB].sum())
        assert data_bytes == pytest.approx(app.checkpoint_bytes, rel=0.01)
        assert len(trace) < 1000 + app.n_procs + 10

    def test_time_to_checkpoint_design_equation(self):
        t = time_to_checkpoint(600_000 * GB, 0.75, 1000 * GB)
        assert t == pytest.approx(450.0)
        with pytest.raises(ValueError):
            time_to_checkpoint(1, 0.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointApp(n_procs=0)
        with pytest.raises(ValueError):
            CheckpointApp(write_request_size=100)


class TestAnalytics:
    def test_read_heavy(self, rng):
        app = AnalyticsApp(request_rate=200.0)
        trace = analytics_trace(app, duration=300.0, rng=rng)
        assert trace.write_fraction_requests() < 0.15

    def test_rate_approximate(self, rng):
        app = AnalyticsApp(request_rate=100.0)
        trace = analytics_trace(app, duration=500.0, rng=rng)
        rate = len(trace) / trace.duration
        assert rate == pytest.approx(100.0, rel=0.35)

    def test_bimodal_sizes(self, rng):
        app = AnalyticsApp(request_rate=300.0)
        trace = analytics_trace(app, duration=200.0, rng=rng)
        small = trace.sizes < 16 * KiB
        mib = trace.sizes % MiB == 0
        assert (small | mib).all()
        assert 0.5 < small.mean() < 0.75

    def test_zero_duration(self, rng):
        assert len(analytics_trace(AnalyticsApp(), 0.0, rng)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticsApp(request_rate=0)
        with pytest.raises(ValueError):
            AnalyticsApp(pareto_alpha=1.0)


class TestSpiderMix:
    def test_calibrated_60_40(self):
        """The headline Spider I statistic: 60% write / 40% read requests."""
        _wl, trace = spider_mixed_workload(duration=2 * 3600.0, seed=3)
        assert trace.write_fraction_requests() == pytest.approx(0.60, abs=0.04)

    def test_bimodal_coverage(self):
        _wl, trace = spider_mixed_workload(duration=2 * 3600.0, seed=3)
        small = trace.sizes < 16 * KiB
        mib = (trace.sizes % MiB == 0) & (trace.sizes > 0)
        assert (small | mib).mean() > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            spider_mixed_workload(target_write_fraction=1.5)


class TestS3D:
    def test_geometry(self):
        app = S3DApp(n_ranks=64, ranks_per_node=16)
        assert app.n_nodes == 4
        assert app.output_bytes == 64 * app.bytes_per_rank

    def test_assign_clients_shares_nodes(self, mini_system):
        app = S3DApp(n_ranks=32, ranks_per_node=16)
        mapping = app.assign_clients(mini_system.clients)
        assert len(mapping) == 32
        assert mapping[0] is mapping[15]
        assert mapping[0] is not mapping[16]

    def test_assign_clients_insufficient(self, mini_system):
        app = S3DApp(n_ranks=100_000, ranks_per_node=1)
        with pytest.raises(ValueError):
            app.assign_clients(mini_system.clients)

    def test_output_transfers_with_round_robin(self, mini_system):
        app = S3DApp(n_ranks=16, ranks_per_node=8)
        transfers = app.output_transfers(
            mini_system.clients,
            S3DApp.round_robin_selector(stripe_count=1),
            n_osts=mini_system.spec.n_osts,
        )
        assert len(transfers) == 16
        assert transfers[0].ost_indices == (0,)
        assert transfers[5].ost_indices == (5,)


class TestRestart:
    def test_restart_is_pure_reads_of_full_volume(self, rng):
        from repro.workloads.checkpoint import restart_trace
        app = CheckpointApp(n_procs=32, bytes_per_proc=8 * MiB)
        trace = restart_trace(app, rng)
        assert trace.write_fraction_requests() == 0.0
        expected = app.checkpoint_bytes + app.n_procs * app.header_bytes
        assert trace.total_bytes == expected

    def test_restart_coarsening_preserves_bytes(self, rng):
        from repro.workloads.checkpoint import restart_trace
        app = CheckpointApp(n_procs=128, bytes_per_proc=512 * MiB)
        trace = restart_trace(app, rng, max_requests=1000)
        data = int(trace.sizes[trace.sizes >= MiB].sum())
        assert data == pytest.approx(app.checkpoint_bytes, rel=0.01)

    def test_time_to_restart(self):
        from repro.workloads.checkpoint import time_to_restart
        app = CheckpointApp(n_procs=1000, bytes_per_proc=GB)
        assert time_to_restart(app, 100 * GB) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            time_to_restart(app, 0)

    def test_restart_burst_is_dense(self, rng):
        from repro.workloads.checkpoint import restart_trace
        app = CheckpointApp(n_procs=16, bytes_per_proc=64 * MiB,
                            aggregate_bandwidth=1 * GB)
        trace = restart_trace(app, rng, start=100.0)
        assert trace.times.min() >= 100.0
        assert trace.duration <= 1.2 * (app.checkpoint_bytes / (1 * GB))
