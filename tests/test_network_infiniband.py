"""SION-like fabric tests: attachment, paths, cable faults."""

import pytest

from repro.core.flow import FlowNetwork
from repro.network.infiniband import FabricSpec, InfinibandFabric


@pytest.fixture
def fabric():
    f = InfinibandFabric(FabricSpec(n_leaf_switches=4, n_core_switches=2))
    f.attach_host("oss0", 0)
    f.attach_host("oss1", 1)
    f.attach_host("rtr0", 0)
    f.attach_host("rtr1", 1)
    return f


class TestAttachment:
    def test_ports_assigned_sequentially(self, fabric):
        assert fabric.cable_of("oss0").port == 0
        assert fabric.cable_of("rtr0").port == 1

    def test_duplicate_host_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.attach_host("oss0", 2)

    def test_leaf_out_of_range(self, fabric):
        with pytest.raises(ValueError):
            fabric.attach_host("x", 4)

    def test_leaf_of(self, fabric):
        assert fabric.leaf_of("oss1") == 1


class TestPaths:
    def test_intra_leaf_stays_on_leaf(self, fabric):
        comps = fabric.path_components("rtr0", "oss0")
        assert comps == ["ibport:0/1", "ibleaf:0", "ibport:0/0"]
        assert fabric.crossings("rtr0", "oss0") == 1

    def test_inter_leaf_goes_via_core(self, fabric):
        comps = fabric.path_components("rtr0", "oss1")
        assert any(c.startswith("ibcore:") for c in comps)
        assert any(c.startswith("ibup:") for c in comps)
        assert fabric.crossings("rtr0", "oss1") == 3

    def test_core_choice_deterministic(self, fabric):
        a = fabric.core_for(0, 1)
        assert a == fabric.core_for(0, 1)
        assert 0 <= a < 2


class TestFlowRegistration:
    def test_all_components_registered(self, fabric):
        net = FlowNetwork()
        fabric.register_components(net)
        for comps in (fabric.path_components("rtr0", "oss0"),
                      fabric.path_components("rtr0", "oss1")):
            for c in comps:
                assert net.has_component(c)

    def test_degraded_cable_reduces_capacity(self, fabric):
        fabric.degrade_cable("oss0", 0.5)
        net = FlowNetwork()
        fabric.register_components(net)
        healthy = net.capacity_of(fabric.cable_of("oss1").component)
        degraded = net.capacity_of(fabric.cable_of("oss0").component)
        assert degraded == pytest.approx(healthy / 2)


class TestFaults:
    def test_degrade_accrues_errors(self, fabric):
        fabric.degrade_cable("rtr0", 0.8, symbol_errors=500)
        errors = fabric.error_counters()
        assert errors["rtr0"] == (500, 0)
        assert not fabric.cable_of("rtr0").healthy

    def test_fail_and_repair(self, fabric):
        fabric.fail_cable("rtr1")
        assert fabric.cable_of("rtr1").degradation == 0.0
        assert fabric.error_counters()["rtr1"][1] == 1
        fabric.repair_cable("rtr1")
        assert fabric.cable_of("rtr1").healthy

    def test_degrade_validation(self, fabric):
        with pytest.raises(ValueError):
            fabric.degrade_cable("rtr0", 0.0)
        with pytest.raises(ValueError):
            fabric.degrade_cable("rtr0", 1.5)
