"""Tests for the du-storm analysis, ARN simulation, and the IOSI
namespace recommender."""

import pytest

from repro.analysis.mds_latency import measure_du_storm
from repro.lustre.mds import MdsSpec
from repro.lustre.recovery import simulate_router_failure
from repro.tools.iosi import IoSignature, recommend_namespace
from repro.units import GB


class TestDuStorm:
    @pytest.fixture(scope="class")
    def result(self):
        return measure_du_storm(duration=60.0, storm_files=100_000,
                                storm_start=10.0, seed=1)

    def test_quiet_latency_is_service_scale(self, result):
        spec = MdsSpec()
        service = (1 + spec.stat_ost_rpc_cost * 4) / spec.stat_rate
        assert result.quiet_p50 >= service
        assert result.quiet_p99 < 20 * service

    def test_storm_inflates_tail(self, result):
        assert result.storm_p99 > 10 * result.quiet_p99
        assert result.p99_inflation > 10

    def test_drain_time_matches_service_demand(self, result):
        spec = MdsSpec()
        service = (1 + spec.stat_ost_rpc_cost * 4) / spec.stat_rate
        # The du needs at least its own service demand of MDS time.
        assert result.storm_duration >= 100_000 * service * 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_du_storm(interactive_rate=0)
        with pytest.raises(ValueError):
            measure_du_storm(storm_files=0)


class TestRouterFailure:
    def test_timeout_discovery_is_timeout_scale(self):
        o = simulate_router_failure(arn=False, seed=2)
        assert 100.0 <= o.mean_stall_seconds <= 160.0

    def test_arn_is_seconds_scale(self):
        o = simulate_router_failure(arn=True, seed=2)
        assert o.mean_stall_seconds < 10.0

    def test_total_stall_accumulates(self):
        o = simulate_router_failure(n_affected_clients=100, arn=False, seed=3)
        assert o.total_stall_client_seconds == pytest.approx(
            o.mean_stall_seconds * 100, rel=1e-9)

    def test_rows_render(self):
        assert len(simulate_router_failure(seed=4).rows()) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_router_failure(0)
        with pytest.raises(ValueError):
            simulate_router_failure(10, reroute_cost=0)


class TestRecommendNamespace:
    SIG = IoSignature(period=600.0, burst_volume_bytes=100 * GB,
                      burst_duration=10.0, bursts_per_run=5, n_runs=3)
    # burst demand: 10 GB/s

    def test_picks_namespace_with_most_margin(self):
        choice = recommend_namespace(self.SIG, {"atlas1": 12 * GB,
                                                "atlas2": 40 * GB})
        assert choice == "atlas2"

    def test_covering_beats_non_covering(self):
        choice = recommend_namespace(self.SIG, {"atlas1": 5 * GB,
                                                "atlas2": 11 * GB})
        assert choice == "atlas2"

    def test_closest_when_none_cover(self):
        choice = recommend_namespace(self.SIG, {"atlas1": 2 * GB,
                                                "atlas2": 8 * GB})
        assert choice == "atlas2"

    def test_deterministic_tie_break(self):
        choice = recommend_namespace(self.SIG, {"b": 20 * GB, "a": 20 * GB})
        assert choice == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_namespace(self.SIG, {})
        with pytest.raises(ValueError):
            recommend_namespace(self.SIG, {"x": -1.0})
        bad = IoSignature(600.0, 1.0, 0.0, 1, 1)
        with pytest.raises(ValueError):
            recommend_namespace(bad, {"x": 1.0})
