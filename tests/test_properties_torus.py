"""Property-based torus tests: metric axioms and routing validity."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.torus import Torus3D, TorusSpec

dims_st = st.tuples(st.integers(2, 9), st.integers(2, 9), st.integers(2, 9))


def coord_st(dims):
    return st.tuples(*(st.integers(0, d - 1) for d in dims))


@st.composite
def torus_and_pair(draw):
    dims = draw(dims_st)
    torus = Torus3D(TorusSpec(dims=dims))
    a = draw(coord_st(dims))
    b = draw(coord_st(dims))
    return torus, a, b


@given(torus_and_pair())
@settings(max_examples=200, deadline=None)
def test_distance_metric_axioms(tp):
    torus, a, b = tp
    assert torus.distance(a, a) == 0
    assert torus.distance(a, b) == torus.distance(b, a)
    assert torus.distance(a, b) >= 0
    # Bounded by half the ring in each dimension.
    bound = sum(d // 2 for d in torus.dims)
    assert torus.distance(a, b) <= bound


@given(torus_and_pair(), st.data())
@settings(max_examples=100, deadline=None)
def test_triangle_inequality(tp, data):
    torus, a, b = tp
    c = data.draw(coord_st(torus.dims))
    assert torus.distance(a, b) <= torus.distance(a, c) + torus.distance(c, b)


@given(torus_and_pair())
@settings(max_examples=200, deadline=None)
def test_route_is_valid_shortest_path(tp):
    torus, a, b = tp
    path = torus.route(a, b)
    assert path[0] == a and path[-1] == b
    for u, v in zip(path, path[1:]):
        assert torus.distance(u, v) == 1
    assert len(path) - 1 == torus.distance(a, b)


@given(torus_and_pair())
@settings(max_examples=200, deadline=None)
def test_route_links_align_with_route(tp):
    torus, a, b = tp
    links = torus.route_links(a, b)
    path = torus.route(a, b)
    assert len(links) == len(path) - 1
    for (tag, x, y, z, axis, sign), src in zip(links, path[:-1]):
        assert (x, y, z) == src
        assert sign in (-1, 1)


@given(torus_and_pair())
@settings(max_examples=100, deadline=None)
def test_vectorized_distance_agrees(tp):
    torus, a, b = tp
    vec = torus.distances_from(a, np.array([b]))
    assert vec[0] == torus.distance(a, b)


@given(dims_st)
@settings(max_examples=50, deadline=None)
def test_index_bijection(dims):
    torus = Torus3D(TorusSpec(dims=dims))
    seen = set()
    for coord in torus.all_coords():
        idx = torus.node_index(coord)
        assert idx not in seen
        seen.add(idx)
        assert torus.coord_of(idx) == coord
    assert len(seen) == dims[0] * dims[1] * dims[2]
