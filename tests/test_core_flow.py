"""Max-min flow solver tests: exact small cases and structure."""

import math

import numpy as np
import pytest

from repro.core.flow import FlowNetwork


def simple_net(cap, flows):
    net = FlowNetwork()
    net.add_component("c", cap)
    for i, demand in enumerate(flows):
        net.add_flow(f"f{i}", ["c"], demand=demand)
    return net


class TestBasics:
    def test_equal_split(self):
        res = simple_net(12.0, [math.inf] * 3).solve()
        assert np.allclose(res.rates, 4.0)
        assert res.total == pytest.approx(12.0)

    def test_demand_bound_respected(self):
        res = simple_net(12.0, [1.0, math.inf, math.inf]).solve()
        assert sorted(res.rates.tolist()) == pytest.approx([1.0, 5.5, 5.5])

    def test_all_demands_satisfiable(self):
        res = simple_net(100.0, [5.0, 10.0, 15.0]).solve()
        assert res.rates.tolist() == pytest.approx([5.0, 10.0, 15.0])
        assert res.saturated_components() == []

    def test_zero_demand_flow(self):
        res = simple_net(10.0, [0.0, math.inf]).solve()
        assert res.rates.tolist() == pytest.approx([0.0, 10.0])

    def test_zero_capacity_component(self):
        res = simple_net(0.0, [math.inf]).solve()
        assert res.rates.tolist() == pytest.approx([0.0])

    def test_weighted_shares(self):
        net = FlowNetwork()
        net.add_component("c", 12.0)
        net.add_flow("heavy", ["c"], weight=2.0)
        net.add_flow("light", ["c"], weight=1.0)
        res = net.solve()
        assert res.rate_of("heavy") == pytest.approx(8.0)
        assert res.rate_of("light") == pytest.approx(4.0)


class TestTopologies:
    def test_two_bottlenecks(self):
        """The classic max-min example: one flow crosses both links."""
        net = FlowNetwork()
        net.add_component("l1", 10.0)
        net.add_component("l2", 4.0)
        net.add_flow("long", ["l1", "l2"])
        net.add_flow("a", ["l1"])
        net.add_flow("b", ["l2"])
        res = net.solve()
        # l2 saturates first at 2 each; 'a' then grows to fill l1.
        assert res.rate_of("long") == pytest.approx(2.0)
        assert res.rate_of("b") == pytest.approx(2.0)
        assert res.rate_of("a") == pytest.approx(8.0)

    def test_layered_path_min_rules(self):
        net = FlowNetwork()
        for name, cap in [("client", 5.0), ("router", 3.0), ("ost", 10.0)]:
            net.add_component(name, cap)
        net.add_flow("f", ["client", "router", "ost"])
        res = net.solve()
        assert res.rate_of("f") == pytest.approx(3.0)
        assert "router" in res.saturated_components()

    def test_infinite_capacity_never_binds(self):
        net = FlowNetwork()
        net.add_component("inf", math.inf)
        net.add_component("cap", 2.0)
        net.add_flow("f", ["inf", "cap"])
        res = net.solve()
        assert res.rate_of("f") == pytest.approx(2.0)

    def test_unbounded_flow_reports_inf(self):
        net = FlowNetwork()
        net.add_component("inf", math.inf)
        net.add_flow("f", ["inf"])
        res = net.solve()
        assert math.isinf(res.rate_of("f"))

    def test_empty_path_with_demand(self):
        net = FlowNetwork()
        net.add_flow("f", [], demand=7.0)
        assert net.solve().rate_of("f") == pytest.approx(7.0)

    def test_duplicate_components_collapse(self):
        net = FlowNetwork()
        net.add_component("c", 6.0)
        net.add_flow("f", ["c", "c", "c"])
        assert net.solve().rate_of("f") == pytest.approx(6.0)


class TestResultApi:
    def test_load_accounting(self):
        net = FlowNetwork()
        net.add_component("c", 9.0)
        net.add_flow("a", ["c"])
        net.add_flow("b", ["c"], demand=1.0)
        res = net.solve()
        assert res.component_load["c"] == pytest.approx(9.0)
        assert res.utilization("c") == pytest.approx(1.0)
        assert "c" in res.bottlenecks

    def test_utilization_of_infinite_component(self):
        net = FlowNetwork()
        net.add_component("inf", math.inf)
        net.add_flow("f", ["inf"], demand=5.0)
        res = net.solve()
        assert res.utilization("inf") == 0.0


class TestValidation:
    def test_unknown_component(self):
        net = FlowNetwork()
        with pytest.raises(KeyError):
            net.add_flow("f", ["missing"])

    def test_duplicate_flow_name(self):
        net = FlowNetwork()
        net.add_component("c", 1.0)
        net.add_flow("f", ["c"])
        with pytest.raises(ValueError):
            net.add_flow("f", ["c"])

    def test_bad_weight_and_demand(self):
        net = FlowNetwork()
        net.add_component("c", 1.0)
        with pytest.raises(ValueError):
            net.add_flow("f", ["c"], weight=0.0)
        with pytest.raises(ValueError):
            net.add_flow("g", ["c"], demand=-1.0)

    def test_negative_capacity(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_component("c", -1.0)

    def test_empty_path_unbounded_demand_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_flow("f", [])
