"""IOR harness tests on the mini system, plus the transfer-size model."""

import numpy as np
import pytest

from repro.iobench.ior import IorRun, client_scaling, transfer_efficiency, transfer_size_sweep
from repro.units import GB, KiB, MiB


class TestTransferEfficiency:
    def test_peaks_at_1mib(self):
        sizes = [64 * KiB, 256 * KiB, MiB, 4 * MiB, 16 * MiB]
        effs = [transfer_efficiency(s) for s in sizes]
        assert max(effs) == transfer_efficiency(MiB)

    def test_monotone_rise_below_peak(self):
        effs = [transfer_efficiency(s) for s in (4 * KiB, 64 * KiB, 512 * KiB, MiB)]
        assert effs == sorted(effs)

    def test_mild_decline_above_peak(self):
        assert transfer_efficiency(16 * MiB) < transfer_efficiency(MiB)
        assert transfer_efficiency(16 * MiB) > 0.5 * transfer_efficiency(MiB)

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_efficiency(0)


class TestIorRun:
    def test_basic_run(self, mini_system):
        result = IorRun(mini_system, n_processes=32, ppn=16).run()
        assert result.aggregate_bw > 0
        assert result.per_process_bw == pytest.approx(
            result.aggregate_bw / 32)

    def test_linear_region_per_process_constant(self, mini_system):
        r1 = IorRun(mini_system, n_processes=16, ppn=16).run()
        r2 = IorRun(mini_system, n_processes=32, ppn=16).run()
        assert r2.aggregate_bw == pytest.approx(2 * r1.aggregate_bw, rel=0.05)

    def test_saturation_region(self, mini_system):
        """Enough processes pin the namespace at its couplet budget."""
        big = IorRun(mini_system, n_processes=120, ppn=4).run()
        fs = mini_system.filesystems[next(iter(mini_system.filesystems))]
        ns_ssus = {o.ssu_index for o in fs.osts}
        budget = sum(mini_system.ssus[s].couplet.bw_cap(fs_level=True)
                     for s in ns_ssus)
        assert big.aggregate_bw == pytest.approx(budget, rel=0.02)

    def test_optimal_beats_random_placement(self, mini_system):
        rand = IorRun(mini_system, n_processes=16, ppn=16,
                      placement="random").run()
        opt = IorRun(mini_system, n_processes=16, ppn=16,
                     placement="optimal").run()
        assert opt.aggregate_bw > 1.3 * rand.aggregate_bw

    def test_stonewall_data_moved(self, mini_system):
        r = IorRun(mini_system, n_processes=8, stonewall_seconds=30.0).run()
        assert r.data_moved_bytes == pytest.approx(30.0 * r.aggregate_bw)

    def test_second_namespace_selectable(self, mini_system):
        names = list(mini_system.filesystems)
        r = IorRun(mini_system, n_processes=8, fs_name=names[1]).run()
        assert r.aggregate_bw > 0

    def test_too_many_processes_rejected(self, mini_system):
        with pytest.raises(ValueError):
            IorRun(mini_system, n_processes=10_000, ppn=1).run()

    def test_validation(self, mini_system):
        with pytest.raises(ValueError):
            IorRun(mini_system, n_processes=0)
        with pytest.raises(ValueError):
            IorRun(mini_system, placement="bogus")
        with pytest.raises(ValueError):
            IorRun(mini_system, stripe_count=0)


class TestSweeps:
    def test_transfer_size_sweep_shape(self, mini_system):
        """Figure 3's shape: rises to 1 MiB, then declines."""
        results = transfer_size_sweep(
            mini_system, sizes=(256 * KiB, MiB, 8 * MiB), n_processes=16)
        bws = [r.aggregate_bw for r in results]
        assert bws[1] > bws[0]
        assert bws[1] > bws[2]

    def test_client_scaling_monotone_then_flat(self, mini_system):
        """Figure 4's shape: monotone growth to a plateau."""
        results = client_scaling(
            mini_system, process_counts=(8, 32, 96, 120), ppn=4)
        bws = [r.aggregate_bw for r in results]
        assert bws[0] < bws[1] < bws[2]
        assert bws[3] == pytest.approx(bws[2], rel=0.10)
