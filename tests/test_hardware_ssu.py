"""SSU building-block tests."""

import numpy as np
import pytest

from repro.hardware.disk import DiskPopulation
from repro.hardware.raid import RaidState
from repro.hardware.ssu import Ssu, SsuSpec
from repro.sim.rng import RngStreams
from repro.units import GB, TB


@pytest.fixture
def ssu():
    spec = SsuSpec()
    pop = DiskPopulation(spec.n_disks, spec.disk, rng=RngStreams(1),
                         block_slow_fraction=0.0, fs_slow_fraction=0.0,
                         healthy_sigma=0.0)
    return Ssu(spec, pop, 0)


class TestSpec:
    def test_spider2_ssu_arithmetic(self):
        spec = SsuSpec()
        assert spec.n_disks == 560
        assert spec.n_groups == 56
        assert spec.usable_capacity == 56 * 8 * 2 * TB

    def test_nominal_bandwidth_is_couplet_bound(self):
        spec = SsuSpec()
        raw = spec.n_groups * 8 * spec.disk.seq_bw
        assert spec.nominal_block_bandwidth() == pytest.approx(
            min(raw, 2 * spec.controller.block_bw_cap))
        assert spec.nominal_block_bandwidth() == pytest.approx(29 * GB)

    def test_indivisible_raid_rejected(self):
        with pytest.raises(ValueError):
            SsuSpec(n_enclosures=3, disks_per_enclosure=7)


class TestSsu:
    def test_disk_range(self, ssu):
        idx = ssu.disk_indices()
        assert idx[0] == 0 and idx[-1] == 559

    def test_range_outside_population_rejected(self):
        spec = SsuSpec()
        pop = DiskPopulation(100, spec.disk, rng=RngStreams(0))
        with pytest.raises(ValueError):
            Ssu(spec, pop, 0)

    def test_group_bandwidths_couplet_capped(self, ssu):
        bw = ssu.group_streaming_bandwidths()
        assert bw.shape == (56,)
        share = ssu.couplet.group_share_caps(fs_level=False)
        assert (bw <= share + 1e-6).all()
        # With uniform healthy disks the couplet is the binding layer.
        assert ssu.aggregate_bandwidth() == pytest.approx(
            ssu.couplet.bw_cap(fs_level=False), rel=1e-6)

    def test_fs_level_below_block_level(self, ssu):
        assert ssu.aggregate_bandwidth(fs_level=True) < ssu.aggregate_bandwidth()

    def test_enclosure_outage_erases_one_member_per_group(self, ssu):
        ssu.apply_enclosure_outage(3)
        for group in ssu.groups:
            assert len(group.erased) == 1
            assert group.state is RaidState.DEGRADED

    def test_restore_puts_members_in_rebuild(self, ssu):
        ssu.apply_enclosure_outage(3)
        ssu.restore_enclosure(3)
        for group in ssu.groups:
            assert not group.erased
            assert len(group.rebuilding) == 1
            assert group.state is RaidState.REBUILDING

    def test_five_enclosure_geometry_loses_two(self):
        spec = SsuSpec(n_enclosures=5, disks_per_enclosure=56)
        pop = DiskPopulation(spec.n_disks, spec.disk, rng=RngStreams(2))
        five = Ssu(spec, pop, 0)
        five.apply_enclosure_outage(0)
        assert all(len(g.erased) == 2 for g in five.groups)
