"""Procurement model tests (Lessons 3 & 5)."""

import pytest

from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.ops.procurement import (
    ProcurementEvaluation,
    ResponseModel,
    Rfp,
    VendorProposal,
)
from repro.units import GB, MB, PB, TB


def block_proposal(**overrides):
    defaults = dict(
        vendor="ddn-like",
        model=ResponseModel.BLOCK_STORAGE,
        ssu=SsuSpec(),
        n_ssus=36,
        price_per_ssu=0.75,
        integration_cost=2.0,
        annual_service_cost=0.5,
        delivery_months=10,
        past_performance=0.85,
    )
    defaults.update(overrides)
    return VendorProposal(**defaults)


def appliance_proposal(**overrides):
    defaults = dict(
        vendor="appliance-co",
        model=ResponseModel.APPLIANCE,
        ssu=SsuSpec(price=1.2),
        n_ssus=36,
        price_per_ssu=1.0,
        integration_cost=1.0,
        annual_service_cost=0.7,
        delivery_months=12,
        past_performance=0.8,
    )
    defaults.update(overrides)
    return VendorProposal(**defaults)


class TestProposal:
    def test_derived_performance(self):
        p = block_proposal()
        assert p.total_seq_bw == pytest.approx(36 * 29 * GB, rel=0.01)
        assert p.total_capacity == 36 * SsuSpec().usable_capacity
        # random follows the 20-25% disk ratio
        assert 0.19 < p.total_random_bw / p.total_seq_bw < 0.26

    def test_tco(self):
        p = block_proposal()
        assert p.tco(5) == pytest.approx(36 * 0.75 + 2.0 + 5 * 0.5)

    def test_block_model_riskier_raw(self):
        assert (block_proposal().integration_risk()
                > appliance_proposal().integration_risk())


class TestEvaluation:
    def test_compliance(self):
        ev = ProcurementEvaluation(Rfp())
        assert ev.compliant(block_proposal())
        slow = block_proposal(n_ssus=8)
        assert not ev.compliant(slow)
        late = block_proposal(delivery_months=30)
        assert not ev.compliant(late)

    def test_buyer_expertise_flips_block_vs_appliance(self):
        """§III-C: OLCF chose block storage *because* its team could absorb
        the integration risk; a less experienced buyer scores the appliance
        higher on risk."""
        rfp = Rfp()
        expert = ProcurementEvaluation(rfp, buyer_integration_expertise=0.9)
        novice = ProcurementEvaluation(rfp, buyer_integration_expertise=0.0)
        block, appliance = block_proposal(), appliance_proposal()
        assert (expert.score(block).scores["risk"]
                > expert.score(appliance).scores["risk"] - 0.05)
        assert (novice.score(block).scores["risk"]
                < novice.score(appliance).scores["risk"])

    def test_block_wins_for_olcf_profile(self):
        """Cheaper + expertise => the block model wins, as it did."""
        ev = ProcurementEvaluation(Rfp(), buyer_integration_expertise=0.85)
        winner, cards = ev.select([block_proposal(), appliance_proposal()])
        assert winner.vendor == "ddn-like"
        assert len(cards) == 2

    def test_noncompliant_cannot_win(self):
        ev = ProcurementEvaluation(Rfp())
        cheap_but_tiny = block_proposal(vendor="tiny", n_ssus=4,
                                        price_per_ssu=0.1)
        winner, _ = ev.select([cheap_but_tiny, appliance_proposal()])
        assert winner.vendor == "appliance-co"

    def test_no_compliant_raises(self):
        ev = ProcurementEvaluation(Rfp())
        with pytest.raises(RuntimeError):
            ev.select([block_proposal(n_ssus=2)])

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ProcurementEvaluation(Rfp(), weights={"performance": 0.5})

    def test_scorecard_row(self):
        ev = ProcurementEvaluation(Rfp())
        card = ev.score(block_proposal())
        assert card.row()[0] == "ddn-like"

    def test_rfp_validation(self):
        with pytest.raises(ValueError):
            Rfp(sequential_floor=0)
        with pytest.raises(ValueError):
            Rfp(budget_min=50, budget_max=40)
