"""The RngStreams migration contract: every stochastic component draws
from a named substream, so (a) one seed pins every result exactly and
(b) components cannot perturb each other's draws.

The snapshot values pin the post-migration behaviour: if anyone swaps a
component back onto an ad-hoc ``np.random.default_rng(seed)`` (or
reorders its draws), these tests fail before the lint ratchet even runs.
Snapshots were computed on the mini 4-SSU system with the seeds shown.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import mini_spec

from repro.analysis.mds_latency import measure_du_storm
from repro.core.spider import SpiderSystem
from repro.iobench.fairlio import FairLioSweep, LunTarget
from repro.iobench.ior import IorRun
from repro.iobench.obdfilter_survey import ObdfilterSurvey
from repro.iobench.suite import AcceptanceSuite
from repro.ops.culling import CullingCampaign
from repro.ops.qa import PerformanceQa

EXACT = dict(rel=0.0, abs=0.0)  # pytest.approx as plain ==, readable diffs


@pytest.fixture
def system():
    return SpiderSystem(mini_spec(), seed=7)


def test_ior_placement_snapshot_and_equality(system):
    run = IorRun(system, n_processes=32, ppn=8, seed=11)
    nodes = [c.name for c in run._select_nodes()]
    assert nodes[:4] == ["nid00006", "nid00038", "nid00114", "nid00116"]
    again = [c.name for c in IorRun(system, n_processes=32, ppn=8,
                                    seed=11)._select_nodes()]
    assert nodes == again


def test_fairlio_default_stream_snapshot(system):
    lun = LunTarget(system.ssus[0].groups[0])
    results = FairLioSweep().run(lun)
    assert results[0].bandwidth == pytest.approx(872588403.5659646, **EXACT)
    # The default stream is derived fresh per call: same draws every time.
    assert results == FairLioSweep().run(lun)


def test_obdfilter_default_stream_snapshot(system):
    writes = [r.write for r in ObdfilterSurvey(system).run([0, 1])]
    assert writes == pytest.approx(
        [782208583.1891836, 846128805.670781], **EXACT)


def test_suite_per_ssu_streams_are_independent(system):
    # Surveying SSU 1 yields the same report whether or not SSU 0 was
    # surveyed first — the stream-independence property RngStreams buys.
    alone = AcceptanceSuite(system).run_ssu(1)
    suite = AcceptanceSuite(SpiderSystem(mini_spec(), seed=7))
    suite.run_ssu(0)
    assert suite.run_ssu(1) == alone


def test_culling_measurement_snapshot_and_equality(system):
    bw = CullingCampaign(system).measure_groups(fs_level=False)
    assert float(bw[0]) == pytest.approx(879939363.5951055, **EXACT)
    assert float(bw[1]) == pytest.approx(924206465.484224, **EXACT)
    bw2 = CullingCampaign(
        SpiderSystem(mini_spec(), seed=7)).measure_groups(fs_level=False)
    assert np.array_equal(bw, bw2)


def test_qa_same_seed_baselines_are_equal(system):
    base = PerformanceQa(system).record_baseline()
    again = PerformanceQa(SpiderSystem(mini_spec(), seed=7)).record_baseline()
    assert np.array_equal(base.write_bw, again.write_bw)


def test_du_storm_snapshot():
    report = measure_du_storm(duration=20.0, storm_files=5_000,
                              interactive_rate=500.0, seed=3)
    assert report.storm_p99 == pytest.approx(0.00011172339487310496, **EXACT)
    assert report.storm_duration == pytest.approx(0.3249999999999993, **EXACT)
    same = measure_du_storm(duration=20.0, storm_files=5_000,
                            interactive_rate=500.0, seed=3)
    assert report == same
