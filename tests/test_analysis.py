"""Analysis-layer tests: workload characterization, layer profiling,
reporting."""

import numpy as np
import pytest

from repro.analysis.layers import profile_layers
from repro.analysis.reporting import render_kv, render_series, render_table
from repro.analysis.workload_stats import (
    characterize,
    hill_tail_index,
    tail_heavier_than_exponential,
)
from repro.sim.rng import RngStreams, bounded_pareto
from repro.workloads.mixed import spider_mixed_workload
from repro.workloads.model import RequestTrace


class TestHillEstimator:
    def test_recovers_pareto_alpha(self, rng):
        for alpha in (1.2, 1.6, 2.5):
            x = bounded_pareto(rng, alpha, 1.0, 1e9, size=200_000)
            est = hill_tail_index(np.asarray(x), tail_fraction=0.02)
            assert est == pytest.approx(alpha, rel=0.2)

    def test_exponential_looks_light(self, rng):
        x = rng.exponential(1.0, size=200_000)
        est = hill_tail_index(x, tail_fraction=0.02)
        assert est > 3.0  # far above heavy-tail territory

    def test_needs_samples(self, rng):
        with pytest.raises(ValueError):
            hill_tail_index(np.ones(5))
        with pytest.raises(ValueError):
            hill_tail_index(np.ones(100), tail_fraction=0.9)


class TestTailComparison:
    def test_pareto_flagged_heavy(self, rng):
        x = np.asarray(bounded_pareto(rng, 1.3, 0.001, 100.0, size=100_000))
        assert tail_heavier_than_exponential(x)

    def test_exponential_not_flagged(self, rng):
        x = rng.exponential(0.01, size=100_000)
        assert not tail_heavier_than_exponential(x)

    def test_needs_samples(self, rng):
        with pytest.raises(ValueError):
            tail_heavier_than_exponential(np.ones(10))


class TestCharacterize:
    def test_spider_mix_report(self):
        """Experiment E3's core: the calibrated mix reproduces the paper's
        published characterization."""
        _wl, trace = spider_mixed_workload(duration=2 * 3600.0, seed=4)
        report = characterize(trace)
        assert report.write_fraction_requests == pytest.approx(0.60, abs=0.04)
        assert report.bimodal_fraction > 0.95
        assert report.interarrival_heavy_tailed
        assert report.rows()  # renders

    def test_needs_enough_requests(self):
        t = RequestTrace(np.arange(10.0), np.ones(10, dtype=np.int64),
                         np.ones(10, dtype=bool))
        with pytest.raises(ValueError):
            characterize(t)


class TestLayerProfile:
    def test_ceilings_monotone_nonincreasing(self, mini_system):
        profile = profile_layers(mini_system)
        ceilings = [l.ceiling for l in profile.layers]
        assert all(a >= b - 1e-6 for a, b in zip(ceilings, ceilings[1:]))

    def test_block_vs_fs_profiles(self, mini_system):
        fs_profile = profile_layers(mini_system, fs_level=True)
        blk_profile = profile_layers(mini_system, fs_level=False)
        assert fs_profile.end_to_end <= blk_profile.end_to_end

    def test_loss_table_renders(self, mini_system):
        rows = profile_layers(mini_system).loss_table()
        assert rows[0][2] == "-"
        assert all(len(r) == 3 for r in rows)

    def test_spider2_couplet_is_the_block_bottleneck(self, spider2_session):
        profile = profile_layers(spider2_session, fs_level=False)
        disks = profile.ceiling_of("disks (streaming sum)")
        couplets = profile.ceiling_of("controller couplets (block)")
        assert couplets < disks  # Lesson 12: controllers gate the raw disks

    def test_ceiling_of_missing_raises(self, mini_system):
        with pytest.raises(KeyError):
            profile_layers(mini_system).ceiling_of("bogus")


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent widths

    def test_render_series_bars_scale(self):
        out = render_series("x", "y", [("p", 10.0), ("q", 5.0)])
        lines = out.splitlines()
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_render_series_empty(self):
        assert render_series("x", "y", [], title="t") == "t"

    def test_render_kv(self):
        out = render_kv([("key", 1), ("longer key", "v")])
        assert "key        : 1" in out


class TestDesignProxy:
    def test_pure_modes_match_spec(self):
        from repro.analysis.design_proxy import mixed_delivered_bandwidth
        from repro.hardware.disk import DiskSpec
        from repro.units import MiB
        spec = DiskSpec()
        assert mixed_delivered_bandwidth(spec, 0.0) == spec.seq_bw
        assert mixed_delivered_bandwidth(spec, 1.0) == pytest.approx(
            spec.bandwidth(MiB, sequential=False))

    def test_harmonic_composition_below_arithmetic(self):
        from repro.analysis.design_proxy import mixed_delivered_bandwidth
        from repro.hardware.disk import DiskSpec
        from repro.units import MiB
        spec = DiskSpec()
        p = 0.4
        harmonic = mixed_delivered_bandwidth(spec, p)
        arithmetic = (p * spec.bandwidth(MiB, sequential=False)
                      + (1 - p) * spec.seq_bw)
        assert harmonic < arithmetic  # time adds, bytes don't

    def test_comparison_detects_proxy_blindness(self):
        from repro.analysis.design_proxy import compare_disk_options
        from repro.hardware.disk import DiskSpec
        from repro.units import MB
        a = DiskSpec(seq_bw=140 * MB, access_time=0.025, name="a")
        b = DiskSpec(seq_bw=140 * MB, access_time=0.075, name="b")
        cmp = compare_disk_options(a, b)
        assert cmp.proxy_blind
        assert cmp.mixed_ratio < 1.0

    def test_validation(self):
        from repro.analysis.design_proxy import mixed_delivered_bandwidth
        from repro.hardware.disk import DiskSpec
        with pytest.raises(ValueError):
            mixed_delivered_bandwidth(DiskSpec(), 1.5)
