"""Monitoring stack tests: metrics DB, checks/alerts, health correlation,
DDN tool, IB monitor."""

import numpy as np
import pytest

from repro.monitoring.checks import CheckScheduler, CheckState
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.health import EventKind, HealthEvent, LustreHealthChecker
from repro.monitoring.ibmon import IbMonitor
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine


class TestMetricsDb:
    def test_insert_and_latest(self):
        db = MetricsDb()
        db.insert("m", "s", 1.0, 10.0)
        db.insert("m", "s", 2.0, 20.0)
        assert db.latest("m", "s").value == 20.0

    def test_out_of_order_rejected(self):
        db = MetricsDb()
        db.insert("m", "s", 5.0, 1.0)
        with pytest.raises(ValueError):
            db.insert("m", "s", 4.0, 1.0)

    def test_range_query(self):
        db = MetricsDb()
        for t in range(10):
            db.insert("m", "s", float(t), float(t))
        points = db.range("m", "s", 2.0, 5.0)
        assert [p.time for p in points] == [2.0, 3.0, 4.0, 5.0]

    def test_rate_from_counters(self):
        db = MetricsDb()
        db.insert("bytes", "c", 0.0, 0.0)
        db.insert("bytes", "c", 10.0, 1000.0)
        assert db.rate("bytes", "c") == pytest.approx(100.0)

    def test_rate_needs_two_points(self):
        db = MetricsDb()
        db.insert("bytes", "c", 0.0, 5.0)
        assert db.rate("bytes", "c") == 0.0

    def test_aggregate_and_top(self):
        db = MetricsDb()
        db.insert("m", "a", 0.0, 1.0)
        db.insert("m", "b", 0.0, 5.0)
        assert db.aggregate_latest("m") == 6.0
        assert db.top_sources("m", 1) == [("b", 5.0)]

    def test_missing_series(self):
        with pytest.raises(KeyError):
            MetricsDb().latest("m", "s")


class TestMetricsDbRetention:
    def test_series_length_stays_bounded(self):
        db = MetricsDb(max_points=16, compaction_window=10.0)
        for t in range(500):
            db.insert("m", "s", float(t), float(t))
        assert len(db.range("m", "s")) <= 16
        assert db.latest("m", "s") == db.range("m", "s")[-1]
        assert db.latest("m", "s").time == 499.0

    def test_recent_tail_stays_dense(self):
        db = MetricsDb(max_points=16, compaction_window=10.0)
        for t in range(100):
            db.insert("m", "s", float(t), float(t))
        # The newest max_points // 2 inserts survive verbatim.
        tail = db.range("m", "s", 92.0, 99.0)
        assert [p.time for p in tail] == [float(t) for t in range(92, 100)]

    def test_rate_preserved_under_compaction(self):
        compacted = MetricsDb(max_points=200, compaction_window=10.0)
        full = MetricsDb()
        for t in range(300):
            for db in (compacted, full):
                db.insert("bytes", "c", float(t), 7.0 * t)
        assert len(compacted.range("bytes", "c")) < 300  # it did compact
        # Any window whose endpoints are compaction-window boundaries
        # yields the exact same counter rate as the unbounded store.
        for t0, t1 in [(10.0, 50.0), (0.0, 100.0), (20.0, 290.0)]:
            assert compacted.rate("bytes", "c", t0, t1) \
                == pytest.approx(full.rate("bytes", "c", t0, t1))
        assert compacted.rate("bytes", "c") == pytest.approx(7.0)

    def test_counter_reset_neighbours_survive(self):
        db = MetricsDb(max_points=16, compaction_window=1000.0)
        values = [float(t) if t < 40 else float(t - 40) for t in range(200)]
        for t, v in enumerate(values):
            db.insert("bytes", "c", float(t), v)
        points = db.range("bytes", "c")
        # Without the reset pair (39, 40) the rate would span the reset
        # and come out wrong; with it, rate restarts at the reset.
        assert any(points[i].value < points[i - 1].value
                   for i in range(1, len(points)))
        assert db.rate("bytes", "c") == pytest.approx(1.0)

    def test_compaction_keeps_order_checks(self):
        db = MetricsDb(max_points=8, compaction_window=2.0)
        for t in range(50):
            db.insert("m", "s", float(t), float(t))
        with pytest.raises(ValueError):
            db.insert("m", "s", 0.0, 1.0)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            MetricsDb(max_points=2)
        with pytest.raises(ValueError):
            MetricsDb(compaction_window=0.0)


class TestCheckScheduler:
    def test_alert_after_confirmations(self):
        engine = Engine()
        sched = CheckScheduler(engine)
        state = {"bad": False}
        sched.register(
            "c",
            lambda: (CheckState.CRITICAL if state["bad"] else CheckState.OK, ""),
            interval=60.0, confirm_after=2,
        )
        engine.run(until=130.0)
        assert sched.active_alerts() == []
        state["bad"] = True
        engine.call_at(140.0, lambda: None)
        engine.run(until=400.0)
        alerts = sched.active_alerts()
        assert len(alerts) == 1
        # first bad poll at 180, confirmed on the second at 240
        assert alerts[0].raised_at == pytest.approx(240.0)

    def test_alert_clears_on_recovery(self):
        engine = Engine()
        sched = CheckScheduler(engine)
        state = {"bad": True}
        sched.register(
            "c",
            lambda: (CheckState.WARNING if state["bad"] else CheckState.OK, ""),
            interval=10.0, confirm_after=1,
        )
        engine.run(until=25.0)
        assert len(sched.active_alerts()) == 1
        state["bad"] = False
        engine.run(until=45.0)
        assert sched.active_alerts() == []
        assert sched.alerts[0].duration == pytest.approx(20.0)

    def test_crashing_check_reports_unknown(self):
        engine = Engine()
        sched = CheckScheduler(engine)

        def boom():
            raise RuntimeError("dead")

        sched.register("c", boom, interval=5.0, confirm_after=1)
        engine.run(until=6.0)
        assert sched.state_of("c") is CheckState.UNKNOWN
        assert len(sched.active_alerts()) == 1

    def test_detection_latency(self):
        engine = Engine()
        sched = CheckScheduler(engine)
        sched.register("c", lambda: (CheckState.CRITICAL, ""),
                       interval=30.0, confirm_after=1)
        engine.run(until=100.0)
        assert sched.detection_latency("c", fault_time=0.0) == pytest.approx(30.0)
        assert sched.detection_latency("c", fault_time=1000.0) is None

    def test_duplicate_check_rejected(self):
        sched = CheckScheduler(Engine())
        sched.register("c", lambda: (CheckState.OK, ""))
        with pytest.raises(ValueError):
            sched.register("c", lambda: (CheckState.OK, ""))


class TestHealthChecker:
    def test_correlates_hw_and_sw_on_same_chain(self):
        hc = LustreHealthChecker(window=120.0)
        hc.ingest(HealthEvent(0.0, EventKind.DISK_FAILURE, "oss01.ctrl"))
        hc.ingest(HealthEvent(30.0, EventKind.RPC_TIMEOUT, "oss01"))
        hc.ingest(HealthEvent(60.0, EventKind.CLIENT_EVICTION, "oss01"))
        incidents = hc.incidents()
        assert len(incidents) == 1
        assert incidents[0].classification == "hardware-rooted"

    def test_separate_hosts_separate_incidents(self):
        hc = LustreHealthChecker()
        hc.ingest(HealthEvent(0.0, EventKind.DISK_FAILURE, "oss01"))
        hc.ingest(HealthEvent(10.0, EventKind.LBUG, "oss07"))
        assert len(hc.incidents()) == 2

    def test_window_splits_incidents(self):
        hc = LustreHealthChecker(window=60.0)
        hc.ingest(HealthEvent(0.0, EventKind.RPC_TIMEOUT, "oss01"))
        hc.ingest(HealthEvent(1000.0, EventKind.RPC_TIMEOUT, "oss01"))
        assert len(hc.incidents()) == 2
        assert all(i.classification == "software" for i in hc.incidents())

    def test_classify_counts(self):
        hc = LustreHealthChecker()
        hc.ingest(HealthEvent(0.0, EventKind.CABLE_ERRORS, "rtr1"))
        hc.ingest(HealthEvent(500.0, EventKind.LBUG, "mds1"))
        counts = hc.classify_counts()
        assert counts["hardware"] == 1
        assert counts["software"] == 1

    def test_out_of_order_rejected(self):
        hc = LustreHealthChecker()
        hc.ingest(HealthEvent(10.0, EventKind.LBUG, "x"))
        with pytest.raises(ValueError):
            hc.ingest(HealthEvent(5.0, EventKind.LBUG, "x"))


class TestHealthCheckerBoundaries:
    """Merge-window edge cases: the correlation window is inclusive, the
    host-chain match is per-incident, and same-time ingest order must not
    change the partition."""

    @staticmethod
    def _partition(hc: LustreHealthChecker) -> set[frozenset]:
        return {
            frozenset((e.time, e.kind, e.host) for e in incident.events)
            for incident in hc.incidents()
        }

    def test_events_exactly_window_apart_merge(self):
        hc = LustreHealthChecker(window=120.0)
        hc.ingest(HealthEvent(0.0, EventKind.DISK_FAILURE, "oss01"))
        hc.ingest(HealthEvent(120.0, EventKind.RPC_TIMEOUT, "oss01"))
        incidents = hc.incidents()
        assert len(incidents) == 1
        assert incidents[0].classification == "hardware-rooted"

    def test_events_just_past_window_split(self):
        hc = LustreHealthChecker(window=120.0)
        hc.ingest(HealthEvent(0.0, EventKind.DISK_FAILURE, "oss01"))
        hc.ingest(HealthEvent(120.0 + 1e-9, EventKind.RPC_TIMEOUT, "oss01"))
        assert len(hc.incidents()) == 2

    def test_window_chains_from_last_event_not_first(self):
        # 0 → 100 → 200: each gap is inside the window even though the
        # ends are not, so the chain stays one incident.
        hc = LustreHealthChecker(window=120.0)
        for t in (0.0, 100.0, 200.0):
            hc.ingest(HealthEvent(t, EventKind.RPC_TIMEOUT, "oss01"))
        assert len(hc.incidents()) == 1

    def test_interleaved_hosts_do_not_cross_extend(self):
        # A and B alternate within each other's windows; each chain must
        # coalesce with itself only, and B's events must not keep A's
        # incident alive past its own window.
        hc = LustreHealthChecker(window=120.0)
        hc.ingest(HealthEvent(0.0, EventKind.DISK_FAILURE, "ossA.ctrl"))
        hc.ingest(HealthEvent(60.0, EventKind.CABLE_ERRORS, "ossB"))
        hc.ingest(HealthEvent(110.0, EventKind.RPC_TIMEOUT, "ossA"))
        hc.ingest(HealthEvent(170.0, EventKind.LBUG, "ossB.mgmt"))
        incidents = hc.incidents()
        assert len(incidents) == 2
        by_chain = {next(iter(i.hosts)).split(".")[0]: i for i in incidents}
        assert {e.time for e in by_chain["ossA"].events} == {0.0, 110.0}
        assert {e.time for e in by_chain["ossB"].events} == {60.0, 170.0}
        assert by_chain["ossA"].classification == "hardware-rooted"
        assert by_chain["ossB"].classification == "hardware-rooted"

    def test_same_time_ingest_order_does_not_change_partition(self):
        import itertools

        batch = [
            HealthEvent(100.0, EventKind.DISK_FAILURE, "oss01"),
            HealthEvent(100.0, EventKind.RPC_TIMEOUT, "oss02"),
            HealthEvent(100.0, EventKind.CABLE_ERRORS, "oss01.ctrl"),
        ]
        partitions = set()
        for perm in itertools.permutations(batch):
            hc = LustreHealthChecker(window=120.0)
            hc.ingest(HealthEvent(0.0, EventKind.JOURNAL_ERROR, "oss02"))
            for event in perm:
                hc.ingest(event)
            partitions.add(frozenset(self._partition(hc)))
        assert len(partitions) == 1

    def test_equal_time_ingest_accepted(self):
        hc = LustreHealthChecker()
        hc.ingest(HealthEvent(5.0, EventKind.LBUG, "x"))
        hc.ingest(HealthEvent(5.0, EventKind.LBUG, "x"))
        assert len(hc.events) == 2


class TestDdnTool:
    def test_polls_all_couplets(self, mini_system):
        db = MetricsDb()
        tool = DdnTool(mini_system, db)
        tool.poll_once(now=0.0)
        assert len(db.sources("ctrl.write_bytes")) == mini_system.spec.n_ssus

    def test_bandwidth_from_counters(self, mini_system):
        db = MetricsDb()
        tool = DdnTool(mini_system, db)
        tool.poll_once(now=0.0)
        couplet = mini_system.ssus[0].couplet
        couplet.record_io(600 * 10**9, write=True, request_size=1 << 20)
        tool.poll_once(now=60.0)
        bw = tool.write_bandwidth(couplet.name, 0.0, 60.0)
        assert bw == pytest.approx(10**10)

    def test_attach_polls_on_engine(self, mini_system):
        engine = Engine()
        db = MetricsDb()
        tool = DdnTool(mini_system, db, poll_interval=30.0)
        tool.attach(engine)
        engine.run(until=100.0)
        assert tool.polls == 3

    def test_busiest_couplets(self, mini_system):
        db = MetricsDb()
        tool = DdnTool(mini_system, db)
        mini_system.ssus[2].couplet.record_io(999, write=True, request_size=1)
        tool.poll_once(now=0.0)
        top = tool.busiest_couplets(1)
        assert top[0][0] == mini_system.ssus[2].couplet.name


class TestIbMonitor:
    def test_degraded_cable_alerting(self, mini_system):
        engine = Engine()
        db = MetricsDb()
        sched = CheckScheduler(engine)
        mon = IbMonitor(mini_system.fabric, db,
                        symbol_error_rate_threshold=0.5)
        host = mini_system.osses[0].name
        mon.register_checks(sched, interval=60.0)
        # Degrade a cable and let errors accrue each sample.
        def degrade():
            mini_system.fabric.degrade_cable(host, 0.7, symbol_errors=600)
        engine.every(60.0, degrade, start=30.0)
        engine.run(until=400.0)
        assert any(a.check == f"ib:{host}" for a in sched.alerts)

    def test_diagnose_cable_in_place(self, mini_system):
        db = MetricsDb()
        mon = IbMonitor(mini_system.fabric, db)
        host = mini_system.osses[1].name
        healthy = mon.diagnose_cable(host)
        assert not healthy["degraded"]
        mini_system.fabric.degrade_cable(host, 0.5)
        diag = mon.diagnose_cable(host)
        assert diag["degraded"]
        assert diag["ratio"] == pytest.approx(0.5, rel=0.05)
