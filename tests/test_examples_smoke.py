"""Smoke tests: every example script runs to completion and prints its
headline content.  These are the living documentation — they must not rot.
"""

import runpy
import sys

import pytest

EXAMPLES = {
    "quickstart": ("examples/quickstart.py",
                   ("Inventory", "layer", "client scaling")),
    "checkpoint_campaign": ("examples/checkpoint_campaign.py",
                            ("Checkpoint design point", "write fraction")),
    "day_in_the_life": ("examples/day_in_the_life.py",
                        ("Per-class outcomes", "Lesson 1 tradeoff",
                         "p99 inflation")),
    "operations_day": ("examples/operations_day.py",
                       ("cable diagnosis", "purge")),
    "procure_a_filesystem": ("examples/procure_a_filesystem.py",
                             ("Winner", "Acceptance")),
    "tiny_files_day": ("examples/tiny_files_day.py",
                       ("Small-file metadata tier", "throughput gain",
                        "f4-ec")),
}

#: the libPIO example builds the full client set and solves large flow
#: problems twice; keep it in the slow bucket
SLOW_EXAMPLES = {
    "noisy_neighbor_libpio": ("examples/noisy_neighbor_libpio.py",
                              ("libPIO", "improvement")),
    "full_lifecycle": ("examples/full_lifecycle.py",
                       ("PHASE 6", "Lifecycle complete")),
}


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name, capsys):
    path, expectations = EXAMPLES[name]
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    for needle in expectations:
        assert needle in out, f"{path} output lacks {needle!r}"


@pytest.mark.parametrize("name", sorted(SLOW_EXAMPLES))
def test_slow_example_runs(name, capsys):
    path, expectations = SLOW_EXAMPLES[name]
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    for needle in expectations:
        assert needle in out, f"{path} output lacks {needle!r}"
