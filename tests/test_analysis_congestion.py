"""Congestion-census tests + center workflow-makespan tests."""

import pytest

from repro.analysis.congestion import census_link_loads, route_census_for_policy
from repro.core.center import HpcCenter, PfsModel, checkpoint_analysis_workflow
from repro.network.lnet import FineGrainedRouting, RoundRobinRouting
from repro.network.torus import Torus3D, TorusSpec
from repro.units import GB, HOUR, TB


@pytest.fixture
def torus():
    return Torus3D(TorusSpec(dims=(6, 6, 6)))


class TestCensus:
    def test_single_route(self, torus):
        report = census_link_loads(torus, [((0, 0, 0), (2, 0, 0))])
        assert report.n_routes == 1
        assert report.total_link_crossings == 2
        assert report.max_load == 1
        assert report.axis_crossings == (2, 0, 0)

    def test_overlapping_routes_create_hotspot(self, torus):
        hot = [((0, 0, 0), (3, 0, 0))] * 5  # three links, load 5 each
        background = [((0, y, z), (0, y + 1, z))  # single-hop, load 1
                      for y in range(3) for z in range(3)]
        report = census_link_loads(torus, hot + background)
        assert report.max_load == 5
        assert report.hotspot_ratio > 2.0

    def test_mean_path_length(self, torus):
        pairs = [((0, 0, 0), (1, 0, 0)), ((0, 0, 0), (0, 0, 3))]
        report = census_link_loads(torus, pairs)
        assert report.mean_path_length == pytest.approx(2.0)

    def test_empty_rejected(self, torus):
        with pytest.raises(ValueError):
            census_link_loads(torus, [])

    def test_rows_render(self, torus):
        report = census_link_loads(torus, [((0, 0, 0), (2, 2, 2))])
        assert len(report.rows()) == 7


class TestPolicyCensus:
    def test_fgr_less_concentrated_than_rr(self, mini_system):
        clients = [c.coord for c in mini_system.clients[:48]]
        leaves = [i % mini_system.spec.fabric.n_leaf_switches
                  for i in range(48)]
        fgr = route_census_for_policy(
            mini_system.torus, FineGrainedRouting(mini_system.lnet),
            clients, leaves)
        rr = route_census_for_policy(
            mini_system.torus, RoundRobinRouting(mini_system.lnet),
            clients, leaves)
        assert fgr.mean_path_length <= rr.mean_path_length

    def test_alignment_validated(self, mini_system):
        with pytest.raises(ValueError):
            route_census_for_policy(
                mini_system.torus, FineGrainedRouting(mini_system.lnet),
                [(0, 0, 0)], [0, 1])


class TestWorkflowMakespan:
    def test_data_centric_pays_no_staging(self):
        center = HpcCenter(model=PfsModel.DATA_CENTRIC)
        wf = checkpoint_analysis_workflow()
        assert center.workflow_staging_seconds(wf) == 0.0

    def test_exclusive_staging_serializes(self):
        center = HpcCenter(model=PfsModel.MACHINE_EXCLUSIVE)
        wf = checkpoint_analysis_workflow(checkpoint_bytes=450 * TB,
                                          reduced_bytes=40 * TB)
        staging = center.workflow_staging_seconds(wf, dtn_bandwidth=10 * GB)
        assert staging == pytest.approx(490 * TB / (10 * GB))
        assert staging > 13 * HOUR  # copying half a petabyte is not free

    def test_makespan_difference_is_staging(self):
        wf = checkpoint_analysis_workflow()
        dc = HpcCenter(model=PfsModel.DATA_CENTRIC)
        ex = HpcCenter(model=PfsModel.MACHINE_EXCLUSIVE)
        kwargs = dict(default_stage_seconds=2 * HOUR, dtn_bandwidth=10 * GB)
        delta = (ex.workflow_makespan(wf, **kwargs)
                 - dc.workflow_makespan(wf, **kwargs))
        assert delta == pytest.approx(ex.workflow_staging_seconds(
            wf, dtn_bandwidth=10 * GB))

    def test_stage_seconds_override(self):
        center = HpcCenter()
        wf = checkpoint_analysis_workflow()
        short = center.workflow_makespan(
            wf, stage_seconds={"simulation": 10.0, "analysis": 10.0,
                               "visualization": 10.0})
        assert short == pytest.approx(30.0)

    def test_validation(self):
        center = HpcCenter()
        wf = checkpoint_analysis_workflow()
        with pytest.raises(ValueError):
            center.workflow_staging_seconds(wf, dtn_bandwidth=0)
