"""fair-lio tests: sweep coverage, queue-depth behaviour, the 20-25% metric."""

import numpy as np
import pytest

from repro.hardware.disk import Disk, DiskPopulation, DiskSpec
from repro.hardware.raid import RaidGeometry, RaidGroup
from repro.iobench.fairlio import (
    DiskTarget,
    FairLioSweep,
    LunTarget,
    random_to_sequential_ratio,
)
from repro.sim.rng import RngStreams
from repro.units import KiB, MiB


@pytest.fixture
def disk_target():
    return DiskTarget(Disk(DiskSpec(), serial="T0"))


@pytest.fixture
def lun_target():
    pop = DiskPopulation(10, rng=RngStreams(0), block_slow_fraction=0.0,
                         fs_slow_fraction=0.0, healthy_sigma=0.0)
    return LunTarget(RaidGroup(RaidGeometry(), pop, list(range(10))))


class TestDiskTarget:
    def test_sequential_full_speed(self, disk_target):
        assert disk_target.bandwidth(MiB, sequential=True) == pytest.approx(
            disk_target.disk.spec.seq_bw)

    def test_random_in_paper_band(self, disk_target):
        seq = disk_target.bandwidth(MiB, sequential=True)
        rnd = disk_target.bandwidth(MiB, sequential=False, queue_depth=1)
        assert 0.20 <= rnd / seq <= 0.25

    def test_queue_depth_helps_random(self, disk_target):
        qd1 = disk_target.bandwidth(MiB, sequential=False, queue_depth=1)
        qd16 = disk_target.bandwidth(MiB, sequential=False, queue_depth=16)
        assert qd16 > 1.3 * qd1

    def test_queue_depth_floor(self, disk_target):
        deep = disk_target.bandwidth(MiB, sequential=False, queue_depth=10_000)
        seq = disk_target.bandwidth(MiB, sequential=True)
        assert deep < seq  # never reaches streaming speed

    def test_validation(self, disk_target):
        with pytest.raises(ValueError):
            disk_target.bandwidth(0, sequential=True)
        with pytest.raises(ValueError):
            disk_target.bandwidth(MiB, sequential=False, queue_depth=0)


class TestLunTarget:
    def test_sequential_is_group_rate(self, lun_target):
        bw = lun_target.bandwidth(MiB, sequential=True)
        assert bw == pytest.approx(8 * lun_target.group.population.spec.seq_bw)

    def test_random_worse_than_single_disk_ratio(self, lun_target):
        """LUN-level random: the 1 MiB request splits into 128 KiB per-disk
        chunks, so the ratio falls below the single-disk 20-25%."""
        seq = lun_target.bandwidth(MiB, sequential=True)
        rnd = lun_target.bandwidth(MiB, sequential=False, queue_depth=1)
        assert rnd / seq < 0.20

    def test_large_requests_recover_efficiency(self, lun_target):
        small = lun_target.bandwidth(MiB, sequential=False)
        large = lun_target.bandwidth(16 * MiB, sequential=False)
        assert large > 2 * small


class TestSweep:
    def test_full_parameter_coverage(self, disk_target, rng):
        sweep = FairLioSweep()
        results = sweep.run(disk_target, rng)
        expected = (len(sweep.request_sizes) * len(sweep.queue_depths)
                    * len(sweep.write_fractions) * len(sweep.modes))
        assert len(results) == expected
        # every combination present exactly once
        combos = {(r.request_size, r.queue_depth, r.write_fraction,
                   r.sequential) for r in results}
        assert len(combos) == expected

    def test_measurement_noise_small(self, disk_target, rng):
        sweep = FairLioSweep(noise_sigma=0.01)
        results = sweep.run(disk_target, rng)
        seq_1m = [r for r in results if r.sequential and r.request_size == MiB]
        model = disk_target.bandwidth(MiB, sequential=True)
        for r in seq_1m:
            assert abs(r.bandwidth - model) / model < 0.05

    def test_iops_consistent(self, disk_target, rng):
        results = FairLioSweep().run(disk_target, rng)
        for r in results:
            assert r.iops == pytest.approx(r.bandwidth / r.request_size)

    def test_run_many(self, lun_target, disk_target, rng):
        results = FairLioSweep(queue_depths=(1,), write_fractions=(1.0,),
                               request_sizes=(MiB,)).run_many(
            [disk_target, lun_target], rng)
        assert {r.target for r in results} == {disk_target.name, lun_target.name}


class TestAcceptanceMetric:
    def test_ratio_extraction(self, disk_target, rng):
        results = FairLioSweep(noise_sigma=0.0).run(disk_target, rng)
        ratio = random_to_sequential_ratio(results)
        assert 0.20 <= ratio <= 0.25

    def test_missing_points_rejected(self, disk_target, rng):
        results = FairLioSweep(request_sizes=(4 * KiB,)).run(disk_target, rng)
        with pytest.raises(ValueError):
            random_to_sequential_ratio(results)
