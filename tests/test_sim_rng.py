"""RNG stream and heavy-tail distribution tests."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, bounded_pareto, lognormal_factors, pareto_interarrivals


class TestRngStreams:
    def test_same_name_same_stream_across_instances(self):
        a = RngStreams(99).get("disks").random(5)
        b = RngStreams(99).get("disks").random(5)
        assert np.array_equal(a, b)

    def test_order_independence(self):
        s1 = RngStreams(1)
        s1.get("x")
        first = s1.get("disks").random(3)
        s2 = RngStreams(1)
        second = s2.get("disks").random(3)
        assert np.array_equal(first, second)

    def test_different_names_differ(self):
        s = RngStreams(0)
        assert not np.array_equal(s.get("a").random(8), s.get("b").random(8))

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(8)
        b = RngStreams(2).get("x").random(8)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic_and_independent(self):
        parent = RngStreams(5)
        child1 = parent.spawn("sub")
        child2 = RngStreams(5).spawn("sub")
        assert child1.seed == child2.seed
        assert child1.seed != parent.seed


class TestBoundedPareto:
    def test_respects_bounds(self, rng):
        x = bounded_pareto(rng, alpha=1.3, lower=0.01, upper=5.0, size=10_000)
        assert x.min() >= 0.01
        assert x.max() <= 5.0

    def test_heavy_tail_shape(self, rng):
        # More mass near the lower bound than a uniform would have.
        x = bounded_pareto(rng, alpha=1.5, lower=1.0, upper=1000.0, size=50_000)
        assert np.mean(x < 2.0) > 0.4
        # but a real tail exists
        assert x.max() > 50.0

    def test_alpha_controls_tail(self, rng):
        light = bounded_pareto(rng, alpha=3.0, lower=1.0, upper=1e6, size=50_000)
        heavy = bounded_pareto(rng, alpha=1.1, lower=1.0, upper=1e6, size=50_000)
        assert np.quantile(heavy, 0.999) > np.quantile(light, 0.999)

    @pytest.mark.parametrize("alpha,lower,upper", [
        (0.0, 1.0, 2.0), (-1.0, 1.0, 2.0), (1.0, 0.0, 2.0), (1.0, 2.0, 1.0),
    ])
    def test_validation(self, rng, alpha, lower, upper):
        with pytest.raises(ValueError):
            bounded_pareto(rng, alpha, lower, upper)


class TestParetoInterarrivals:
    def test_positive_gaps(self, rng):
        gaps = pareto_interarrivals(rng, 1000)
        assert len(gaps) == 1000
        assert (gaps > 0).all()
        assert gaps.max() <= 60.0

    def test_empty(self, rng):
        assert len(pareto_interarrivals(rng, 0)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            pareto_interarrivals(rng, -1)


class TestLognormalFactors:
    def test_unit_median(self, rng):
        f = lognormal_factors(rng, 100_000, sigma=0.05)
        assert np.median(f) == pytest.approx(1.0, rel=0.01)

    def test_sigma_zero_is_exactly_one(self, rng):
        f = lognormal_factors(rng, 100, sigma=0.0)
        assert np.allclose(f, 1.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            lognormal_factors(rng, 10, sigma=-0.1)
        with pytest.raises(ValueError):
            lognormal_factors(rng, -1)
