"""Property-based tests: units round-trips, stripe conservation, purge
safety, RAID capacity arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.raid import RaidGeometry
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.namespace import Namespace, StripeLayout
from repro.lustre.ost import Ost, OstSpec, fill_penalty
from repro.tools.purger import Purger
from repro.units import DAY, KiB, MiB, TB, fmt_size, parse_size


class TestUnitsProperties:
    @given(st.integers(0, 10**18))
    @settings(max_examples=200)
    def test_parse_size_int_identity(self, n):
        assert parse_size(n) == n

    @given(st.floats(0.001, 999.0), st.sampled_from(["KB", "MB", "GB", "TB", "PB"]))
    @settings(max_examples=200)
    def test_parse_decimal_scaling(self, value, suffix):
        import repro.units as u
        factor = getattr(u, suffix)
        assert parse_size(f"{value:.3f} {suffix}") == round(
            float(f"{value:.3f}") * factor)


class TestStripeProperties:
    @given(
        st.integers(1, 32),  # stripe count
        st.integers(1, 8),  # stripe size in 64 KiB units
        st.integers(0, 10**12),  # file size
    )
    @settings(max_examples=300)
    def test_share_conservation_and_balance(self, count, ss_units, size):
        layout = StripeLayout(osts=tuple(range(count)),
                              stripe_size=ss_units * 64 * KiB)
        shares = layout.ost_share(size)
        # conservation
        assert sum(shares.values()) == size
        # balance: shares differ by at most one stripe
        values = list(shares.values())
        assert max(values) - min(values) <= layout.stripe_size


class TestFillPenaltyProperties:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=200)
    def test_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert fill_penalty(lo) >= fill_penalty(hi) - 1e-12

    @given(st.floats(-10.0, 10.0))
    @settings(max_examples=100)
    def test_bounded(self, fill):
        assert 0.35 <= fill_penalty(fill) <= 1.0


class TestRaidProperties:
    @given(st.integers(1, 16), st.integers(0, 4))
    @settings(max_examples=100)
    def test_usable_fraction(self, n_data, n_parity):
        g = RaidGeometry(n_data=n_data, n_parity=n_parity)
        assert g.width == n_data + n_parity
        assert 0 < g.usable_fraction() <= 1
        assert g.usable_fraction() == pytest.approx(n_data / g.width)


class TestPurgeSafetyProperty:
    @given(
        st.lists(
            st.tuples(st.floats(0, 30), st.floats(0, 30), st.booleans()),
            min_size=1, max_size=40,
        ),
        st.floats(10.0, 60.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_purge_never_removes_recent_files(self, files, now_days):
        """For any creation/access history and any sweep time, no file
        touched within the window is deleted, and every deleted file was
        stale — both directions of the 14-day policy."""
        osts = [Ost(0, OstSpec(capacity_bytes=100 * TB))]
        fs = LustreFilesystem("scratch", osts, default_stripe_count=1)
        now = now_days * DAY
        expectations = {}
        for i, (created_d, accessed_d, do_access) in enumerate(files):
            created = created_d * DAY
            path = f"/f{i}"
            fs.create_file(path, now=created, size=1024)
            touched = created
            if do_access and accessed_d >= created_d:
                fs.read_file(path, now=accessed_d * DAY)
                touched = accessed_d * DAY
            expectations[path] = (now - touched) > 14 * DAY
        Purger(fs).sweep(now=now)
        for path, should_be_gone in expectations.items():
            assert (path not in fs.namespace) == should_be_gone
