"""repro.sched: job model, arrivals, arbitration, scheduling, determinism."""

from __future__ import annotations

import math

import pytest

from repro.core.spider import SpiderSystem
from repro.faults import FaultClass, FaultPlan, PlannedFault
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.trace import Tracer, use_tracer
from repro.sched import (
    BandwidthArbiter,
    FacilityScheduler,
    JobMix,
    JobSpec,
    Phase,
    PlatformClass,
    QosPolicy,
    generate_jobs,
    jains_index,
)
from repro.units import GB, HOUR, MINUTE
from tests.conftest import mini_spec

SIM = PlatformClass.SIMULATION
ANA = PlatformClass.ANALYTICS
DTN = PlatformClass.DATA_TRANSFER


def fresh_system() -> SpiderSystem:
    """Schedulers with fault plans mutate the system — one per run."""
    return SpiderSystem(mini_spec(), seed=7, build_clients=False)


def backbone_of(system: SpiderSystem) -> float:
    return system.aggregate_bandwidth(fs_level=True)


def io_job(name: str, *, demand: float, seconds: float, arrival: float = 0.0,
           platform: PlatformClass = SIM) -> JobSpec:
    """One single-phase I/O job sized to drain in ``seconds`` at ``demand``."""
    return JobSpec(name, platform, arrival,
                   (Phase.io(demand * seconds, demand),))


class TestJobModel:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("nap", duration=1.0)
        with pytest.raises(ValueError):
            Phase.compute(0.0)
        with pytest.raises(ValueError):
            Phase.io(0.0, 1.0)
        with pytest.raises(ValueError):
            Phase.io(1.0, 0.0)

    def test_jobspec_validation(self):
        with pytest.raises(ValueError):
            JobSpec("j", SIM, -1.0, (Phase.compute(1.0),))
        with pytest.raises(ValueError):
            JobSpec("j", SIM, 0.0, ())

    def test_isolated_runtime(self):
        job = JobSpec("j", SIM, 0.0,
                      (Phase.compute(100.0), Phase.io(200.0, 4.0)))
        # demand 4 against capacity 2: the io phase drains at 2
        assert job.isolated_runtime(2.0) == pytest.approx(200.0)
        assert job.isolated_io_time(2.0) == pytest.approx(100.0)
        assert job.isolated_runtime(8.0) == pytest.approx(150.0)
        assert job.total_io_bytes == pytest.approx(200.0)
        with pytest.raises(ValueError):
            job.isolated_runtime(0.0)


class TestArrivals:
    def test_same_args_identical(self):
        kwargs = dict(duration=2 * HOUR, seed=3, reference_bandwidth=10 * GB)
        assert generate_jobs(JobMix(), **kwargs) == \
            generate_jobs(JobMix(), **kwargs)

    def test_seed_changes_population(self):
        a = generate_jobs(JobMix(), duration=2 * HOUR, seed=3,
                          reference_bandwidth=10 * GB)
        b = generate_jobs(JobMix(), duration=2 * HOUR, seed=4,
                          reference_bandwidth=10 * GB)
        assert a != b

    def test_sorted_and_in_window(self):
        jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=3,
                             reference_bandwidth=10 * GB)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 2 * HOUR for a in arrivals)
        assert {j.platform for j in jobs} == {SIM, ANA, DTN}

    def test_demands_scale_with_reference(self):
        jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=3,
                             reference_bandwidth=10 * GB)
        mix = JobMix()
        for job in jobs:
            if job.platform is ANA:
                for phase in job.phases:
                    assert mix.ana_demand_min * 10 * GB <= phase.demand
                    assert phase.demand <= mix.ana_demand_max * 10 * GB

    def test_scaled_rates(self):
        none = generate_jobs(JobMix().scaled(0.0), duration=2 * HOUR, seed=3,
                             reference_bandwidth=10 * GB)
        assert none == ()
        more = generate_jobs(JobMix().scaled(4.0), duration=2 * HOUR, seed=3,
                             reference_bandwidth=10 * GB)
        base = generate_jobs(JobMix(), duration=2 * HOUR, seed=3,
                             reference_bandwidth=10 * GB)
        assert len(more) > len(base)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            JobMix(simulation_per_hour=-1.0)
        with pytest.raises(ValueError):
            JobMix(sim_demand_min=0.5, sim_demand_max=0.4)
        with pytest.raises(ValueError):
            JobMix().scaled(-2.0)


class TestQosPolicy:
    def test_defaults_reserve_headroom(self):
        policy = QosPolicy()
        capped = sum(policy.cap_of(c) for c in (SIM, DTN))
        assert capped < 1.0
        assert policy.cap_of(ANA) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QosPolicy(cap_fraction={SIM: 0.0})
        with pytest.raises(ValueError):
            QosPolicy(weight={SIM: -1.0})
        with pytest.raises(ValueError):
            QosPolicy(max_concurrent={SIM: 0})

    def test_disabled(self):
        assert not QosPolicy.disabled().enabled


class TestArbiter:
    def test_single_flow_bounded_by_backbone(self):
        arbiter = BandwidthArbiter(QosPolicy.disabled())
        rates = arbiter.allocate([("a", SIM, 20.0)], backbone_capacity=10.0,
                                 ingest_caps={})
        assert rates[0] == pytest.approx(10.0)

    def test_cap_binds_when_enabled(self):
        policy = QosPolicy(cap_fraction={SIM: 0.5})
        capped = BandwidthArbiter(policy).allocate(
            [("a", SIM, 20.0)], backbone_capacity=10.0, ingest_caps={})
        assert capped[0] == pytest.approx(5.0)
        free = BandwidthArbiter(QosPolicy.disabled()).allocate(
            [("a", SIM, 20.0)], backbone_capacity=10.0, ingest_caps={})
        assert free[0] == pytest.approx(10.0)

    def test_cap_shared_within_class(self):
        policy = QosPolicy(cap_fraction={SIM: 0.5})
        rates = BandwidthArbiter(policy).allocate(
            [("a", SIM, 20.0), ("b", SIM, 20.0)],
            backbone_capacity=10.0, ingest_caps={})
        assert sum(rates) == pytest.approx(5.0)

    def test_ingest_cap_binds(self):
        rates = BandwidthArbiter(QosPolicy.disabled()).allocate(
            [("a", ANA, 20.0)], backbone_capacity=10.0,
            ingest_caps={ANA: 2.0})
        assert rates[0] == pytest.approx(2.0)

    def test_small_demands_satisfied_under_contention(self):
        rates = BandwidthArbiter(QosPolicy.disabled()).allocate(
            [("storm", SIM, 100.0), ("sip", ANA, 1.0)],
            backbone_capacity=10.0, ingest_caps={})
        assert rates[1] == pytest.approx(1.0)
        assert rates[0] == pytest.approx(9.0)

    def test_empty_requests(self):
        rates = BandwidthArbiter(QosPolicy()).allocate(
            [], backbone_capacity=10.0, ingest_caps={})
        assert len(rates) == 0


class TestJainsIndex:
    def test_equal_shares(self):
        assert jains_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hot(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0


class TestScheduler:
    def test_single_job_runs_at_isolated_speed(self):
        system = fresh_system()
        bw = backbone_of(system)
        job = io_job("solo", demand=0.5 * bw, seconds=30.0)
        result = FacilityScheduler(system, [job],
                                   policy=QosPolicy.disabled()).run()
        outcome = result.outcomes[0]
        assert result.n_finished == 1
        assert outcome.slowdown == pytest.approx(1.0, rel=1e-3)
        assert outcome.satisfaction == pytest.approx(1.0, rel=1e-3)
        assert result.makespan == pytest.approx(30.0, rel=1e-3)

    def test_contention_halves_rates(self):
        system = fresh_system()
        bw = backbone_of(system)
        jobs = [io_job("a", demand=bw, seconds=30.0),
                io_job("b", demand=bw, seconds=30.0)]
        result = FacilityScheduler(system, jobs,
                                   policy=QosPolicy.disabled()).run()
        for outcome in result.outcomes:
            assert outcome.slowdown == pytest.approx(2.0, rel=1e-3)
            assert outcome.satisfaction == pytest.approx(0.5, rel=1e-3)
            assert outcome.drain_overrun == pytest.approx(2.0, rel=1e-3)
        assert result.overall_fairness == pytest.approx(1.0)

    def test_qos_cap_throttles(self):
        system = fresh_system()
        bw = backbone_of(system)
        job = io_job("burst", demand=bw, seconds=30.0)
        result = FacilityScheduler(system, [job], policy=QosPolicy()).run()
        expected = 1.0 / QosPolicy().cap_of(SIM)
        assert result.outcomes[0].slowdown == pytest.approx(expected,
                                                            rel=1e-3)

    def test_admission_limit_queues_fifo(self):
        system = fresh_system()
        bw = backbone_of(system)
        policy = QosPolicy(enabled=False, max_concurrent={SIM: 1})
        jobs = [io_job("a", demand=0.5 * bw, seconds=30.0),
                io_job("b", demand=0.5 * bw, seconds=30.0)]
        result = FacilityScheduler(system, jobs, policy=policy).run()
        queued = next(o for o in result.outcomes if o.name == "b")
        assert queued.start == pytest.approx(30.0, rel=1e-3)
        assert queued.slowdown == pytest.approx(1.0, rel=1e-3)
        assert queued.stretch == pytest.approx(2.0, rel=1e-3)
        assert queued.stretch > queued.slowdown

    def test_compute_phases_cost_no_bandwidth(self):
        system = fresh_system()
        bw = backbone_of(system)
        job = JobSpec("mixed", SIM, 0.0,
                      (Phase.compute(10 * MINUTE),
                       Phase.io(0.5 * bw * 30.0, 0.5 * bw)))
        result = FacilityScheduler(system, [job],
                                   policy=QosPolicy.disabled()).run()
        assert result.outcomes[0].slowdown == pytest.approx(1.0, rel=1e-3)
        assert result.makespan == pytest.approx(10 * MINUTE + 30.0, rel=1e-3)

    def test_horizon_censors(self):
        system = fresh_system()
        bw = backbone_of(system)
        job = io_job("long", demand=0.5 * bw, seconds=4000.0)
        result = FacilityScheduler(system, [job], horizon=100.0).run()
        outcome = result.outcomes[0]
        assert result.n_censored == 1
        assert outcome.censored
        assert outcome.finish is None
        assert outcome.slowdown is None and outcome.stretch is None

    def test_latency_probe_absent_without_analytics(self):
        system = fresh_system()
        bw = backbone_of(system)
        result = FacilityScheduler(
            system, [io_job("solo", demand=0.5 * bw, seconds=30.0)],
            policy=QosPolicy.disabled()).run()
        assert result.latency is None
        with pytest.raises(KeyError):
            result.summary_of(ANA)

    def test_fault_under_load_slows_jobs(self):
        def run(with_fault: bool):
            system = fresh_system()
            bw = backbone_of(system)
            job = io_job("victim", demand=bw, seconds=60.0)
            plan = None
            if with_fault:
                plan = FaultPlan((PlannedFault(
                    time=0.0, fault=FaultClass.CONTROLLER_FAIL, target=0),))
            return FacilityScheduler(system, [job], fault_plan=plan,
                                     policy=QosPolicy.disabled()).run()

        clean, faulted = run(False), run(True)
        assert faulted.n_fault_events >= 1
        assert clean.n_fault_events == 0
        assert faulted.makespan > clean.makespan
        assert faulted.outcomes[0].slowdown > clean.outcomes[0].slowdown

    def test_rejects_bad_inputs(self):
        system = fresh_system()
        with pytest.raises(ValueError):
            FacilityScheduler(system, [])
        with pytest.raises(ValueError):
            FacilityScheduler(system, [io_job("a", demand=1.0, seconds=1.0)],
                              horizon=0.0)


@pytest.fixture(scope="module")
def paired_runs():
    """The same mini-system population with QoS caps off and on."""
    def run(policy):
        system = fresh_system()
        bw = backbone_of(system)
        jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=11,
                             reference_bandwidth=bw)
        return FacilityScheduler(system, jobs, policy=policy, seed=11).run()

    return run(QosPolicy.disabled()), run(QosPolicy())


class TestPopulationRuns:
    def test_same_seed_results_are_equal(self, paired_runs):
        off, _on = paired_runs
        system = fresh_system()
        bw = backbone_of(system)
        jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=11,
                             reference_bandwidth=bw)
        again = FacilityScheduler(system, jobs, policy=QosPolicy.disabled(),
                                  seed=11).run()
        assert again == off

    def test_different_seed_differs(self, paired_runs):
        off, _on = paired_runs
        system = fresh_system()
        bw = backbone_of(system)
        jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=12,
                             reference_bandwidth=bw)
        other = FacilityScheduler(system, jobs, policy=QosPolicy.disabled(),
                                  seed=12).run()
        assert other != off

    def test_telemetry_on_off_is_bit_identical(self, paired_runs):
        _off, on = paired_runs
        telemetry, tracer = Telemetry(enabled=True), Tracer(enabled=True)
        with use_telemetry(telemetry), use_tracer(tracer):
            system = fresh_system()
            bw = backbone_of(system)
            jobs = generate_jobs(JobMix(), duration=2 * HOUR, seed=11,
                                 reference_bandwidth=bw)
            instrumented = FacilityScheduler(system, jobs, policy=QosPolicy(),
                                             seed=11).run()
        assert instrumented == on
        spans = [s for s in tracer.spans if s.name.startswith("job:")]
        assert len(spans) == on.n_submitted
        finished = [c for c in telemetry.counters()
                    if c.name == "sched.finished"]
        assert sum(c.value for c in finished) == on.n_finished

    def test_every_submitted_job_is_accounted(self, paired_runs):
        off, _on = paired_runs
        assert off.n_submitted == off.n_finished + off.n_censored
        assert len(off.outcomes) == off.n_submitted
        assert [o.name for o in off.outcomes] == \
            sorted(o.name for o in off.outcomes)
        assert all(n >= 0 for _cls, n in off.delivered_by_class)

    def test_analytics_p99_degrades_and_qos_recovers_it(self, paired_runs):
        off, on = paired_runs
        # Co-scheduling with checkpoint-heavy jobs inflates analytics
        # read p99; the per-class demand caps win most of it back.
        assert off.latency.shared_p99 > 1.5 * off.latency.alone_p99
        assert on.latency.shared_p99 < off.latency.shared_p99
        assert on.latency.p99_inflation < off.latency.p99_inflation

    def test_caps_trade_simulation_for_analytics(self, paired_runs):
        off, on = paired_runs
        # Max-min already protects analytics *bandwidth* (small demands
        # fill first), so its satisfaction barely moves; the caps' win is
        # the latency recovery above.  What they cost is checkpoint
        # throughput: the capped simulation class drains no faster.
        assert on.summary_of(ANA).mean_satisfaction == pytest.approx(
            off.summary_of(ANA).mean_satisfaction, abs=0.05)
        assert on.summary_of(SIM).mean_satisfaction <= \
            off.summary_of(SIM).mean_satisfaction + 0.05
        assert on.qos_enabled and not off.qos_enabled
