"""Incremental-solver equivalence: delta re-solves must match scratch.

The contract under test (DESIGN.md §9, docs/PERFORMANCE.md): a
:class:`FlowNetwork` driven through any sequence of delta operations
(``add_flow`` / ``remove_flow`` / ``set_capacity`` / ``set_demand``)
allocates the same rates as a network built from scratch in the current
state — within 1e-9 relative, the float-associativity slack between the
two fill orders.  Plus the :class:`Epoch` batching contract: permuting
the changes inside one batch cannot change the solved rates.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.flow import Epoch, FlowNetwork

#: relative tolerance between delta and scratch rates: the two solvers
#: may freeze flows in different orders, so sums associate differently
_RTOL = 1e-9


def _scratch_clone(net: FlowNetwork) -> FlowNetwork:
    """A from-scratch network in ``net``'s current state, via public API."""
    clone = FlowNetwork()
    for name in net.component_names():
        clone.add_component(name, net.capacity_of(name))
    for name in net.flow_names():
        path, demand, weight = net.flow_spec(name)
        clone.add_flow(name, path, demand=demand, weight=weight)
    return clone


def _assert_rates_match(result, scratch_result) -> None:
    got = dict(zip(result.flow_names, result.rates))
    want = dict(zip(scratch_result.flow_names, scratch_result.rates))
    assert set(got) == set(want)
    for name, rate in want.items():
        if math.isinf(rate):
            assert math.isinf(got[name]), name
        else:
            assert got[name] == pytest.approx(rate, rel=_RTOL, abs=1e-6), name


def _random_path(rng, comps):
    k = int(rng.integers(1, min(4, len(comps)) + 1))
    return list(rng.choice(comps, size=k, replace=False))


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_random_delta_sequence_matches_scratch(seed):
    """Property test: random op sequences, delta rates == scratch rates."""
    rng = np.random.default_rng(seed)
    comps = [f"c{i}" for i in range(6)]
    net = FlowNetwork()
    for name in comps:
        cap = math.inf if rng.random() < 0.2 else float(rng.uniform(0.5, 50.0))
        net.add_component(name, cap)

    counter = 0
    for step in range(40):
        op = rng.random()
        flows = net.flow_names()
        if op < 0.4 or not flows:
            counter += 1
            demand = (math.inf if rng.random() < 0.2
                      else float(rng.uniform(0.01, 30.0)))
            net.add_flow(f"f{counter}", _random_path(rng, comps),
                         demand=demand,
                         weight=float(rng.uniform(0.5, 2.0)))
        elif op < 0.6:
            net.remove_flow(flows[int(rng.integers(len(flows)))])
        elif op < 0.8:
            cap = (math.inf if rng.random() < 0.2
                   else float(rng.uniform(0.5, 50.0)))
            net.set_capacity(comps[int(rng.integers(len(comps)))], cap)
        else:
            name = flows[int(rng.integers(len(flows)))]
            path, _demand, _weight = net.flow_spec(name)
            demand = (float(rng.uniform(0.01, 30.0)) if path
                      else float(rng.uniform(0.01, 30.0)))
            net.set_demand(name, demand)
        _assert_rates_match(net.solve(), _scratch_clone(net).solve())

    counts = net.solve_counts
    assert counts["full"] >= 1
    assert counts["delta"] + counts["shortcircuit"] + counts["cached"] > 0


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_batched_deltas_match_scratch(seed):
    """Several ops between solves (the epoch-batched shape) still match."""
    rng = np.random.default_rng(seed)
    comps = [f"c{i}" for i in range(5)]
    net = FlowNetwork()
    for name in comps:
        net.add_component(name, float(rng.uniform(1.0, 20.0)))
    for i in range(6):
        net.add_flow(f"f{i}", _random_path(rng, comps),
                     demand=float(rng.uniform(0.1, 10.0)))
    _assert_rates_match(net.solve(), _scratch_clone(net).solve())
    for _round in range(10):
        for _ in range(int(rng.integers(2, 5))):  # a same-tick burst
            if rng.random() < 0.5:
                net.set_capacity(comps[int(rng.integers(len(comps)))],
                                 float(rng.uniform(1.0, 20.0)))
            else:
                flows = net.flow_names()
                net.set_demand(flows[int(rng.integers(len(flows)))],
                               float(rng.uniform(0.1, 10.0)))
        _assert_rates_match(net.solve(), _scratch_clone(net).solve())


def test_epoch_permutation_determinism():
    """Permuting one batch's same-tick changes yields identical rates.

    The changes commute as state mutations (distinct targets), so the
    epoch contract says the one flush after the batch must solve the same
    allocation regardless of application order — bit-identical rates
    (demands are tie-free, making the fill order unique).
    """
    changes = [
        ("cap", "a", 7.0),
        ("cap", "c", 3.0),
        ("dem", "f0", 2.5),
        ("dem", "f2", 0.75),
    ]

    def run(order):
        net = FlowNetwork()
        for name, cap in [("a", 10.0), ("b", 6.0), ("c", 9.0)]:
            net.add_component(name, cap)
        specs = [("f0", ["a", "b"], 4.0), ("f1", ["b", "c"], 3.0),
                 ("f2", ["a", "c"], 1.5), ("f3", ["c"], 5.0)]
        for name, path, demand in specs:
            net.add_flow(name, path, demand=demand)
        net.solve()
        solved: list[np.ndarray] = []
        epoch = Epoch(lambda _label: solved.append(net.solve().rates.copy()))
        with epoch:
            for kind, target, value in order:
                if kind == "cap":
                    net.set_capacity(target, value)
                else:
                    net.set_demand(target, value)
                epoch.request(f"{kind}:{target}")
        assert epoch.flushes == 1  # the whole burst cost one solve
        return solved[0]

    baseline = run(changes)
    for perm in ([changes[1], changes[3], changes[0], changes[2]],
                 list(reversed(changes))):
        assert np.array_equal(run(perm), baseline)


def test_epoch_batches_labels_and_defers_to_end_of_tick():
    flushed: list[str] = []
    epoch = Epoch(flushed.append)
    with epoch:
        epoch.request("a")
        epoch.request("b")
        epoch.request("a")  # duplicates collapse
        assert flushed == []  # held until the batch closes
    assert flushed == ["a+b"]
    assert epoch.flushes == 1
    epoch.request("solo")  # outside a batch, no engine: immediate
    assert flushed == ["a+b", "solo"]


def test_add_component_readd_with_new_capacity_invalidates():
    """Regression: re-adding a component must act as a capacity change.

    The old behaviour silently kept the stale capacity bookkeeping, so a
    caller re-registering a component with a new capacity (the idiom of
    rebuild-style callers) solved against the old value.
    """
    net = FlowNetwork()
    net.add_component("link", 10.0)
    net.add_flow("f", ["link"], demand=math.inf)
    assert net.solve().rates[0] == pytest.approx(10.0)
    net.add_component("link", 4.0)  # re-add: must dirty, not no-op
    result = net.solve()
    assert result.rates[0] == pytest.approx(4.0)
    assert result.bottlenecks["link"] == pytest.approx(4.0)


def test_solve_counts_classify_the_resolve_paths():
    net = FlowNetwork()
    net.add_component("shared", 10.0)
    net.add_component("spare", 100.0)
    net.add_flow("f0", ["shared"], demand=8.0)
    net.add_flow("f1", ["spare"], demand=2.0)
    net.solve()
    assert net.solve_counts["full"] == 1
    net.solve()  # nothing dirty
    assert net.solve_counts["cached"] == 1
    net.set_capacity("spare", 90.0)  # slack region: analytic short-circuit
    net.solve()
    assert net.solve_counts["shortcircuit"] == 1
    net.set_capacity("shared", 6.0)  # contended region: restricted re-fill
    net.solve()
    assert net.solve_counts["delta"] == 1
    _assert_rates_match(net.solve(), _scratch_clone(net).solve())
