"""The A19 storm study: static collapse, flowlet recovery, determinism.

The mini system runs the study in the scarce-row-bandwidth regime (torus
links at 0.5 GB/s — the same ``--link-bw`` dial the CLI exposes), which
is what makes a clustered all-to-one read burst a *network* problem: the
probe's delivered rate is then bounded by its share of saturated row
links, not by its private OST.
"""

from dataclasses import replace

import pytest

from tests.conftest import mini_spec
from repro.core.spider import SpiderSystem
from repro.network.storm import (
    StormStudyResult,
    _probe_coord,
    run_storm_study,
)
from repro.obs.instruments import Telemetry, use_telemetry
from repro.units import GB


def storm_factory(seed=7):
    base = mini_spec()
    spec = replace(base, torus=replace(base.torus, link_bw=0.5 * GB))
    return lambda: SpiderSystem(spec, seed=seed)


def quick_study(**kw):
    defaults = dict(seed=11, duration=3600.0, storm_start=600.0,
                    storm_end=3000.0)
    defaults.update(kw)
    return run_storm_study(storm_factory(), **defaults)


class TestProbePlacement:
    def test_probe_never_sits_on_a_router_node(self, mini_system):
        coord = _probe_coord(mini_system)
        assert coord not in {r.coord for r in mini_system.routers}

    def test_probe_rides_the_storm_row(self, mini_system):
        dims = mini_system.torus.dims
        _x, y, z = _probe_coord(mini_system)
        assert (y, z) == (dims[1] // 2, dims[2] // 2)


class TestStormHeadline:
    @pytest.fixture(scope="class")
    def study(self):
        return run_storm_study(storm_factory(), seed=11)

    def test_static_arm_collapses(self, study):
        # The probe's tail latency under static routing is an order of
        # magnitude past its median: the row links saturated and max-min
        # sharing squeezed the probe to a sliver.
        assert study.static.latency_p99 > 10 * study.static.latency_p50
        assert study.static.peak_victim_util == pytest.approx(1.0)

    def test_flowlet_recovers_at_least_10x(self, study):
        assert study.recovery_factor >= 10.0

    def test_adaptive_machinery_actually_ran(self, study):
        assert study.flowlet.rehashes > 0
        assert study.flowlet.backpressure_engagements >= 1
        assert study.static.rehashes == 0
        assert study.static.backpressure_engagements == 0

    def test_flowlet_pays_rebuilds_static_does_not(self, study):
        # Each committed re-hash batch is one rebuild; static resolves
        # on the fast path all storm long.
        assert study.static.full_solves <= 3
        assert study.flowlet.full_solves > study.static.full_solves

    def test_rows_are_renderable(self, study):
        rows = study.rows()
        assert all(len(r) == 3 for r in rows)
        for arm in (study.static, study.flowlet):
            assert all(len(r) == 2 for r in arm.rows())


class TestDeterminism:
    def test_same_seed_results_compare_equal(self):
        assert quick_study() == quick_study()

    def test_different_seed_differs(self):
        a = quick_study(seed=1)
        b = quick_study(seed=2)
        assert a != b

    def test_bit_identical_with_telemetry_on_or_off(self):
        with use_telemetry(Telemetry(enabled=True)):
            on = quick_study()
        with use_telemetry(Telemetry(enabled=False)):
            off = quick_study()
        assert on == off

    def test_result_is_a_plain_value(self):
        study = quick_study()
        assert isinstance(study, StormStudyResult)
        assert study.flowlet.samples[0].time >= 0.0


class TestValidation:
    def test_bad_storm_window_rejected(self):
        with pytest.raises(ValueError):
            quick_study(storm_start=3000.0, storm_end=600.0)
        with pytest.raises(ValueError):
            quick_study(storm_end=4000.0)  # past the duration

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            quick_study(sample_interval=0.0)
        with pytest.raises(ValueError):
            quick_study(request_bytes=0.0)
        with pytest.raises(ValueError):
            quick_study(shed_fraction=0.0)
