"""Disk model tests: the 20-25% random ratio and the slow tails."""

import numpy as np
import pytest

from repro.hardware.disk import Disk, DiskPopulation, DiskSpec, DiskState
from repro.sim.rng import RngStreams
from repro.units import KiB, MB, MiB, TB


class TestDiskSpec:
    def test_defaults_match_spider2(self):
        spec = DiskSpec()
        assert spec.capacity_bytes == 2 * TB
        assert spec.seq_bw == 140 * MB

    def test_random_ratio_in_paper_band_at_1mib(self):
        # "20-25% of its peak performance under random I/O workloads
        # (with 1 MB I/O block sizes)" — §III-A.
        eff = DiskSpec().random_efficiency(1 * MiB)
        assert 0.20 <= eff <= 0.25

    def test_random_efficiency_monotone_in_size(self):
        spec = DiskSpec()
        sizes = [4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB]
        effs = [spec.random_efficiency(s) for s in sizes]
        assert effs == sorted(effs)
        assert effs[0] < 0.01  # tiny random requests are seek-dominated

    def test_sequential_ignores_request_size(self):
        spec = DiskSpec()
        assert spec.bandwidth(4 * KiB, sequential=True) == spec.seq_bw
        assert spec.bandwidth(16 * MiB, sequential=True) == spec.seq_bw

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(capacity_bytes=0)
        with pytest.raises(ValueError):
            DiskSpec(seq_bw=0)
        with pytest.raises(ValueError):
            DiskSpec(annual_failure_rate=1.0)
        with pytest.raises(ValueError):
            DiskSpec().random_efficiency(0)


class TestDisk:
    def test_speed_factor_scales(self):
        spec = DiskSpec()
        slow = Disk(spec, "S1", speed_factor=0.5)
        assert slow.seq_bw == pytest.approx(spec.seq_bw * 0.5)

    def test_fs_latency_factor_only_at_fs_level(self):
        spec = DiskSpec()
        disk = Disk(spec, "S2", fs_latency_factor=1.5)
        block = disk.bandwidth(MiB, sequential=True, fs_level=False)
        fs = disk.bandwidth(MiB, sequential=True, fs_level=True)
        assert block == pytest.approx(spec.seq_bw)
        assert fs == pytest.approx(spec.seq_bw / 1.5)


class TestDiskPopulation:
    def test_population_size_and_views(self):
        pop = DiskPopulation(1000, rng=RngStreams(1))
        assert len(pop) == 1000
        assert pop.seq_bandwidths().shape == (1000,)

    def test_slow_tail_incidence_calibrated(self):
        # The defaults are calibrated to the §V-A culling counts:
        # ≈7.45% block-slow, ≈2.48% fs-latency-tail.
        pop = DiskPopulation(20_160, rng=RngStreams(3))
        slow = np.sum(pop.speed_factor < 0.95)
        assert 1200 <= slow <= 1800  # ≈1,500 of 20,160
        fs_tail = np.sum(pop.fs_latency_factor > 1.05)
        assert 350 <= fs_tail <= 650  # ≈500

    def test_healthy_body_tight(self):
        pop = DiskPopulation(5000, rng=RngStreams(4), block_slow_fraction=0.0,
                             fs_slow_fraction=0.0)
        assert pop.speed_factor.std() < 0.02
        assert np.allclose(pop.fs_latency_factor, 1.0)

    def test_replace_clears_tails(self):
        pop = DiskPopulation(2000, rng=RngStreams(5))
        slow = np.flatnonzero(pop.speed_factor < 0.95)
        n = pop.replace(slow)
        assert n == len(slow)
        assert pop.total_replacements == len(slow)
        assert (pop.speed_factor > 0.9).all()
        assert np.allclose(pop.fs_latency_factor[slow], 1.0)

    def test_replace_empty_is_noop(self):
        pop = DiskPopulation(10, rng=RngStreams(6))
        assert pop.replace([]) == 0

    def test_replace_out_of_range(self):
        pop = DiskPopulation(10, rng=RngStreams(6))
        with pytest.raises(IndexError):
            pop.replace([10])

    def test_failed_disk_has_zero_bandwidth(self):
        pop = DiskPopulation(10, rng=RngStreams(7))
        pop.fail(3)
        assert pop.seq_bandwidths()[3] == 0.0
        assert pop.bandwidths()[3] == 0.0
        assert pop.disk(3).state is DiskState.FAILED

    def test_disk_view_matches_arrays(self):
        pop = DiskPopulation(10, rng=RngStreams(8))
        d = pop.disk(2)
        assert d.speed_factor == pytest.approx(float(pop.speed_factor[2]))
        assert d.serial.endswith("000002")

    def test_disk_view_out_of_range(self):
        pop = DiskPopulation(10, rng=RngStreams(8))
        with pytest.raises(IndexError):
            pop.disk(10)

    def test_random_bandwidths_scaled(self):
        pop = DiskPopulation(100, rng=RngStreams(9), block_slow_fraction=0.0)
        seq = pop.bandwidths(sequential=True)
        rnd = pop.bandwidths(request_size=MiB, sequential=False)
        ratio = rnd / seq
        assert ((ratio > 0.20) & (ratio < 0.25)).all()

    def test_seeded_reproducibility(self):
        a = DiskPopulation(500, rng=RngStreams(11))
        b = DiskPopulation(500, rng=RngStreams(11))
        assert np.array_equal(a.speed_factor, b.speed_factor)
        assert np.array_equal(a.fs_latency_factor, b.fs_latency_factor)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskPopulation(0)
