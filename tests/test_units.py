"""Unit-handling tests: the decimal/binary split and formatting."""

import math

import pytest

from repro.units import (
    DAY, GB, GiB, HOUR, KB, KiB, MB, MiB, MINUTE, PB, TB, TiB,
    fmt_bandwidth, fmt_duration, fmt_size, parse_size, transfer_time,
)


class TestConstants:
    def test_decimal_are_powers_of_1000(self):
        assert KB == 1000
        assert MB == KB * 1000
        assert GB == MB * 1000
        assert TB == GB * 1000
        assert PB == TB * 1000

    def test_binary_are_powers_of_1024(self):
        assert KiB == 1024
        assert MiB == KiB * 1024
        assert GiB == MiB * 1024
        assert TiB == GiB * 1024

    def test_binary_exceeds_decimal(self):
        assert KiB > KB and MiB > MB and GiB > GB and TiB > TB

    def test_time_constants(self):
        assert MINUTE == 60 and HOUR == 3600 and DAY == 86400


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("16KiB", 16 * KiB),
        ("1 MB", MB),
        ("1.5 TB", int(1.5 * TB)),
        ("2tib", 2 * TiB),
        ("512", 512),
        ("512B", 512),
        ("32 PB", 32 * PB),
    ])
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_numbers_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(4096.6) == 4097

    @pytest.mark.parametrize("bad", ["", "MB", "12 XB", "1..5 GB", "-3 MB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestFormatting:
    def test_fmt_size_uses_decimal_prefixes(self):
        assert fmt_size(32 * PB) == "32.00 PB"
        assert fmt_size(2 * TB) == "2.00 TB"
        assert fmt_size(999) == "999 B"

    def test_fmt_bandwidth_headline_units(self):
        assert fmt_bandwidth(1.04e12) == "1.04 TB/s"
        assert fmt_bandwidth(240 * GB) == "240.00 GB/s"

    def test_fmt_duration_scales(self):
        assert fmt_duration(6 * MINUTE) == "6.0 min"
        assert fmt_duration(2 * DAY) == "2.0 d"
        assert fmt_duration(0.005).endswith("ms")

    def test_fmt_duration_non_finite(self):
        assert fmt_duration(math.inf) == "inf"


class TestTransferTime:
    def test_paper_design_point(self):
        # 75% of 600 TB in 6 minutes implies 1.25 TB/s; the paper rounds
        # the requirement to "1 TB/s", giving 7.5 minutes at exactly 1 TB/s.
        t = transfer_time(0.75 * 600 * TB, 1000 * GB)
        assert t == pytest.approx(450.0)
        implied_requirement = 0.75 * 600 * TB / (6 * MINUTE)
        assert implied_requirement == pytest.approx(1.25 * 1000 * GB)

    def test_latency_added(self):
        assert transfer_time(MB, MB, latency=0.5) == pytest.approx(1.5)

    def test_zero_bytes_is_latency_only(self):
        assert transfer_time(0, 100, latency=0.25) == 0.25

    def test_zero_bandwidth_stalls(self):
        assert math.isinf(transfer_time(1, 0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transfer_time(-1, 10)
        with pytest.raises(ValueError):
            transfer_time(1, -10)
