"""Tests for repro.metatier: needles, shards, warm tier, paired study."""

import pytest

from repro.lustre.mds import OpMix
from repro.lustre.namespace import NamespaceError
from repro.lustre.ost import Ost, OstSpec
from repro.metatier import (
    F4_EC,
    RAID6_REPLICATED,
    AgeMigrationPolicy,
    AggregatedTier,
    EncodingScheme,
    HaystackDirectory,
    MetaFault,
    MetaStudySpec,
    NeedleCache,
    PerFileTier,
    SegmentSpec,
    SegmentStore,
    ShardedFilesystem,
    ShardedNamespace,
    TinyFileSizes,
    UntarStorm,
    WarmTier,
    run_meta_study,
    shard_key,
    tradeoff_rows,
)
from repro.metatier.needles import NEEDLE_HEADER_BYTES
from repro.lustre.filesystem import LustreFilesystem
from repro.obs.instruments import Telemetry, use_telemetry
from repro.sim.engine import Engine
from repro.units import GB, KiB, MiB, TB


def make_fs(n_osts: int = 4, capacity: int = 100 * GB) -> LustreFilesystem:
    osts = [Ost(i, OstSpec(capacity_bytes=capacity)) for i in range(n_osts)]
    return LustreFilesystem("t", osts, default_stripe_count=1)


def make_sharded(n_osts: int = 4, n_shards: int = 3,
                 capacity: int = 100 * GB) -> ShardedFilesystem:
    osts = [Ost(i, OstSpec(capacity_bytes=capacity)) for i in range(n_osts)]
    return ShardedFilesystem("t", osts, n_shards=n_shards,
                             default_stripe_count=1)


def small_spec(**kw) -> SegmentSpec:
    base = dict(segment_bytes=1 * MiB, compact_threshold=0.5)
    base.update(kw)
    base.setdefault("max_needle_bytes", min(256 * KiB, base["segment_bytes"]))
    return SegmentSpec(**base)


class TestSegmentStore:
    def test_write_read_delete_roundtrip(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec())
        n = store.write("/a/f1", 1000, now=1.0)
        assert n.offset == 0
        assert n.length == 1000
        assert n.framed_bytes == NEEDLE_HEADER_BYTES + 1000
        assert "/a/f1" in store
        assert len(store) == 1
        got = store.read("/a/f1", now=2.0)
        assert got == n
        store.delete("/a/f1", now=3.0)
        assert "/a/f1" not in store
        with pytest.raises(KeyError):
            store.read("/a/f1", now=4.0)
        with pytest.raises(KeyError):
            store.delete("/a/f1", now=4.0)

    def test_needles_pack_sequentially_into_one_segment(self):
        store = SegmentStore(make_fs(), spec=small_spec())
        n1 = store.write("k1", 100, now=0.0)
        n2 = store.write("k2", 200, now=0.0)
        assert n1.segment_index == n2.segment_index == 0
        assert n2.offset == n1.framed_bytes

    def test_segment_seals_and_rolls_at_capacity(self):
        store = SegmentStore(make_fs(), spec=small_spec(segment_bytes=4096))
        store.write("k1", 2100, now=0.0)
        store.write("k2", 2100, now=0.0)  # does not fit with framing
        assert len(store.segments) == 2
        assert store.segments[0].sealed
        assert not store.segments[1].sealed

    def test_one_mds_create_per_segment_not_per_needle(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=4096))
        before = fs.mds.ops_served
        for i in range(20):
            store.write(f"k{i}", 1000, now=0.0)
        # 20 needles → 5-ish segments; MDS ops are segment creates (plus
        # the one mkdir), nowhere near one per needle.
        created = fs.mds.ops_served - before
        assert created == store.counters.segment_creates + 1
        assert created < 10

    def test_oversized_and_duplicate_writes_rejected(self):
        store = SegmentStore(make_fs(), spec=small_spec())
        with pytest.raises(ValueError):
            store.write("big", 512 * KiB, now=0.0)
        with pytest.raises(ValueError):
            store.write("zero", 0, now=0.0)
        store.write("k", 100, now=0.0)
        with pytest.raises(KeyError):
            store.write("k", 100, now=0.0)

    def test_read_charges_exactly_one_ost(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec())
        needle = store.write("k", 5000, now=0.0)
        reads_before = [o.read_bytes_total for o in fs.osts]
        store.read("k", now=1.0)
        deltas = [o.read_bytes_total - b
                  for o, b in zip(fs.osts, reads_before)]
        assert sorted(deltas)[-1] == needle.framed_bytes
        assert sum(1 for d in deltas if d) == 1

    def test_delete_tombstones_until_compaction(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=8192))
        for i in range(10):
            store.write(f"k{i}", 1500, now=float(i))
        used_before = fs.used_bytes
        for i in range(0, 10, 2):
            store.delete(f"k{i}", now=20.0)
        # Tombstones: logical deletes reclaim nothing until compaction.
        assert fs.used_bytes == used_before
        report = store.compact(now=30.0)
        assert report.segments_compacted >= 1
        assert report.bytes_reclaimed > 0
        assert fs.used_bytes < used_before
        # Every survivor still readable, with its original written_at.
        for i in range(1, 10, 2):
            needle = store.read(f"k{i}", now=31.0)
            assert needle.written_at == float(i)

    def test_compaction_unlinks_retired_segments(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=4096))
        for i in range(6):
            store.write(f"k{i}", 1500, now=0.0)
        first = store.segments[0]
        for needle in list(store.index.values()):
            if needle.segment_index == first.index:
                store.delete(needle.key, now=1.0)
        store.compact(now=2.0)
        assert first.retired
        assert first.path not in fs.namespace
        # A fully-dead segment is rewritten-as-nothing, not moved.
        assert first.n_live == 0

    def test_store_counters_track_physical_ops(self):
        store = SegmentStore(make_fs(), spec=small_spec())
        store.write("a", 100, now=0.0)
        store.write("b", 100, now=0.0)
        store.read("a", now=1.0)
        store.delete("b", now=2.0)
        c = store.counters
        assert (c.writes, c.reads, c.deletes) == (2, 1, 1)
        assert c.bytes_written == 2 * (NEEDLE_HEADER_BYTES + 100)

    def test_telemetry_counters_emitted_when_enabled(self):
        telemetry = Telemetry(enabled=True)
        with use_telemetry(telemetry):
            store = SegmentStore(make_fs(), spec=small_spec())
            store.write("a", 100, now=0.0)
            store.read("a", now=1.0)
        names = {c.name for c in telemetry.counters()}
        assert "metatier.needle_writes" in names
        assert "metatier.needle_reads" in names


class TestDirectoryAndCache:
    def test_directory_roundtrip_and_memory(self):
        store = SegmentStore(make_fs(), spec=small_spec())
        directory = HaystackDirectory([store])
        needle = store.write("/x/1", 100, now=0.0)
        directory.record("/x/1", store, needle)
        assert "/x/1" in directory
        assert directory.locate("/x/1").needle == needle
        assert directory.memory_bytes() == 48
        directory.forget("/x/1")
        assert len(directory) == 0
        with pytest.raises(KeyError):
            directory.locate("/x/1")

    def test_multi_store_writes_are_seeded_and_balanced(self):
        fs = make_fs()
        stores = [SegmentStore(fs, name=f"s{i}", spec=small_spec())
                  for i in range(3)]
        d1 = HaystackDirectory(stores, seed=7)
        picks1 = [d1.store_for_write().name for _ in range(60)]
        fs2 = make_fs()
        stores2 = [SegmentStore(fs2, name=f"s{i}", spec=small_spec())
                   for i in range(3)]
        d2 = HaystackDirectory(stores2, seed=7)
        picks2 = [d2.store_for_write().name for _ in range(60)]
        assert picks1 == picks2           # seeded determinism
        assert len(set(picks1)) == 3      # all stores used

    def test_duplicate_store_names_rejected(self):
        fs = make_fs()
        stores = [SegmentStore(fs, name="dup", spec=small_spec())
                  for _ in range(2)]
        with pytest.raises(ValueError):
            HaystackDirectory(stores)

    def test_cache_hit_rate_converges_and_is_seeded(self):
        c1 = NeedleCache(0.8, seed=3)
        outcomes1 = [c1.lookup() for _ in range(2000)]
        c2 = NeedleCache(0.8, seed=3)
        outcomes2 = [c2.lookup() for _ in range(2000)]
        assert outcomes1 == outcomes2
        assert abs(c1.observed_hit_rate - 0.8) < 0.05
        assert NeedleCache(0.0).observed_hit_rate == 0.0
        with pytest.raises(ValueError):
            NeedleCache(1.5)


class TestShardedNamespace:
    def test_shard_key_is_stable_and_colocates_siblings(self):
        assert shard_key("/a/b/f1", 4) == shard_key("/a/b/f2", 4)
        assert shard_key("/a/b/f1", 4) == shard_key("/a/b/f1", 4)
        assert 0 <= shard_key("/x", 1) < 1

    def test_create_charges_owning_shard_only(self):
        sns = ShardedNamespace("t", n_shards=3)
        sns.mkdir("/proj", 0.0)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        before = sns.busy_seconds()
        sns.create("/proj/f", layout, 1.0)
        deltas = [b - a for a, b in zip(before, sns.busy_seconds())]
        owner = sns.shard_of("/proj/f")
        assert deltas[owner] > 0
        assert all(d == 0.0 for i, d in enumerate(deltas) if i != owner)

    def test_listdir_sees_files_and_replicated_subdirs(self):
        sns = ShardedNamespace("t", n_shards=4)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        sns.mkdir("/d", 0.0)
        sns.mkdir("/d/sub", 0.0)
        for i in range(5):
            sns.create(f"/d/f{i}", layout, 0.0)
        names = sns.listdir("/d")
        assert names == sorted(["/d/sub"] + [f"/d/f{i}" for i in range(5)])

    def test_same_shard_rename_is_one_transaction(self):
        sns = ShardedNamespace("t", n_shards=4)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        sns.mkdir("/d", 0.0)
        sns.create("/d/a", layout, 0.0)
        ops_before = sns.total_ops()
        sns.rename("/d/a", "/d/b", 1.0)
        assert sns.cross_shard_renames == 0
        assert sns.total_ops() - ops_before == 1
        assert "/d/b" in sns and "/d/a" not in sns

    def test_cross_shard_rename_pays_the_dne_transaction(self):
        n = 4
        sns = ShardedNamespace("t", n_shards=n)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        # Find two directories on different shards.
        dirs = [f"/d{i}" for i in range(16)]
        src_dir = dirs[0]
        src_shard = shard_key(f"{src_dir}/x", n)
        dst_dir = next(d for d in dirs
                       if shard_key(f"{d}/x", n) != src_shard)
        sns.mkdir(src_dir, 0.0)
        sns.mkdir(dst_dir, 0.0)
        sns.create(f"{src_dir}/f", layout, 1.0)
        ops_before = sns.total_ops()
        moved = sns.rename(f"{src_dir}/f", f"{dst_dir}/f", 2.0)
        assert sns.cross_shard_renames == 1
        # link + unlink + create + rename bookkeeping: 4 ops, two shards.
        assert sns.total_ops() - ops_before == 4
        assert moved.path == f"{dst_dir}/f"
        assert f"{src_dir}/f" not in sns
        # atime/mtime survive the move (it is a rename, not a rewrite).
        assert moved.atime == 1.0 and moved.mtime == 1.0

    def test_rename_rejects_directories(self):
        sns = ShardedNamespace("t", n_shards=4)
        sns.mkdir("/d", 0.0)
        with pytest.raises(NamespaceError):
            sns.rename("/d", "/e", 1.0)

    def test_cross_shard_hard_link(self):
        n = 4
        sns = ShardedNamespace("t", n_shards=n)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        dirs = [f"/d{i}" for i in range(16)]
        home_dir = dirs[0]
        home = shard_key(f"{home_dir}/x", n)
        other_dir = next(d for d in dirs if shard_key(f"{d}/x", n) != home)
        sns.mkdir(home_dir, 0.0)
        sns.mkdir(other_dir, 0.0)
        sns.create(f"{home_dir}/t", layout, 0.0, size=1000)
        link = sns.link(f"{home_dir}/t", f"{other_dir}/l", 1.0)
        assert sns.cross_shard_links == 1
        assert link.size == 0  # dentry only; capacity stays with target
        assert sns.link_targets[f"{other_dir}/l"] == f"{home_dir}/t"

    def test_files_iteration_has_no_duplicates(self):
        sns = ShardedNamespace("t", n_shards=3)
        from repro.lustre.namespace import StripeLayout
        layout = StripeLayout(osts=(0,))
        for d in range(4):
            sns.mkdir(f"/d{d}", 0.0)
            for f in range(5):
                sns.create(f"/d{d}/f{f}", layout, 0.0)
        paths = [e.path for e in sns.files()]
        assert len(paths) == len(set(paths)) == 20
        assert sns.n_files == 20

    def test_parallel_busy_is_max_and_balance_in_range(self):
        sns = ShardedNamespace("t", n_shards=3)
        sns.servers[0].service_time(OpMix(creates=100))
        sns.servers[1].service_time(OpMix(creates=300))
        assert sns.parallel_busy_seconds() == max(sns.busy_seconds())
        assert 0.0 < sns.balance() <= 1.0
        empty = ShardedNamespace("e", n_shards=3)
        assert empty.balance() == 1.0


class TestShardedFilesystem:
    def test_capacity_accounting_matches_per_file(self):
        fs = make_sharded()
        fs.mkdir("/d", 0.0)
        fs.create_file("/d/a", 0.0, size=10 * MiB)
        assert fs.used_bytes == 10 * MiB
        fs.append("/d/a", 2 * MiB, 1.0)
        assert fs.used_bytes == 12 * MiB
        fs.unlink("/d/a")
        assert fs.used_bytes == 0

    def test_unlinking_a_link_dentry_keeps_capacity(self):
        fs = make_sharded()
        fs.mkdir("/d", 0.0)
        fs.create_file("/d/a", 0.0, size=4 * MiB)
        fs.namespace.link("/d/a", "/d/l", 1.0)
        used = fs.used_bytes
        fs.unlink("/d/l")
        assert fs.used_bytes == used
        fs.unlink("/d/a")
        assert fs.used_bytes == 0

    def test_scan_cost_is_parallel_across_shards(self):
        sharded = make_sharded(n_shards=4)
        single = make_fs()
        n = 100_000
        t_sharded = sharded.scan_cost(n, server_scan_speedup=10.0)
        t_single = single.scan_cost(n, server_scan_speedup=10.0)
        # 4 shards scan in parallel: makespan ~ 1/4 of the single MDS.
        assert t_sharded < t_single / 3.0
        # And every shard was charged its share.
        assert all(b > 0 for b in sharded.namespace.busy_seconds())

    def test_du_spreads_stats_over_shards(self):
        fs = make_sharded(n_shards=3)
        for d in range(6):
            fs.mkdir(f"/d{d}", 0.0)
            fs.create_file(f"/d{d}/f", 0.0, size=1024)
        total = fs.du("/")
        assert total == 6 * 1024
        assert sum(s.ops_served for s in fs.namespace.servers) >= 6


class TestWarmTier:
    def test_scheme_presets_match_published_multipliers(self):
        assert F4_EC.storage_multiplier == 2.1
        assert RAID6_REPLICATED.storage_multiplier == 2.5
        assert F4_EC.raw_bytes(100 * TB) == int(210 * TB)

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            EncodingScheme("bad", 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            EncodingScheme("bad", 2.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            EncodingScheme("bad", 2.0, 1.0, 0.5)

    def test_rebuild_tradeoff_ec_cheaper_at_rest_dearer_in_crisis(self):
        raid = RAID6_REPLICATED
        ec = F4_EC
        logical = 10 * TB
        assert ec.raw_bytes(logical) < raid.raw_bytes(logical)
        assert (ec.rebuild_seconds(1 * TB, 1 * GB)
                > raid.rebuild_seconds(1 * TB, 1 * GB))

    def test_tradeoff_rows_shape(self):
        rows = tradeoff_rows()
        assert len(rows) == 2
        assert rows[0][0] == "raid6+replica"
        assert rows[1][0] == "f4-ec(10,4)"
        assert all(len(r) == 4 for r in rows)

    def test_migration_moves_only_sealed_cold_segments(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=4096))
        for i in range(8):
            store.write(f"k{i}", 1500, now=float(i))
        warm = WarmTier()
        policy = AgeMigrationPolicy(age_threshold=100.0)
        # Nothing is old enough yet.
        assert policy.eligible(store, now=50.0) == []
        report = policy.sweep(store, warm, now=200.0)
        sealed = [s for s in store.segments if s.sealed]
        assert report.segments_migrated == len(sealed) > 0
        assert all(s.migrated for s in sealed)
        # The open segment stays hot.
        assert not store.segments[-1].migrated
        assert warm.n_segments == len(sealed)
        assert warm.logical_bytes == sum(s.live_bytes for s in sealed)

    def test_migration_releases_hot_capacity_and_saves_raw_bytes(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=4096))
        for i in range(8):
            store.write(f"k{i}", 1500, now=0.0)
        used_before = fs.used_bytes
        report = AgeMigrationPolicy(10.0).sweep(store, WarmTier(), now=100.0)
        assert fs.used_bytes < used_before
        # 2.5x replicated hot bytes out, 2.1x EC warm bytes in: net win.
        assert report.raw_bytes_saved > 0

    def test_reads_of_migrated_needles_skip_hot_osts(self):
        fs = make_fs()
        store = SegmentStore(fs, spec=small_spec(segment_bytes=4096))
        for i in range(4):
            store.write(f"k{i}", 1500, now=0.0)
        AgeMigrationPolicy(10.0).sweep(store, WarmTier(), now=100.0)
        migrated_key = next(
            n.key for n in store.index.values()
            if store.segments[n.segment_index].migrated)
        reads_before = sum(o.read_bytes_total for o in fs.osts)
        store.read(migrated_key, now=101.0)
        assert sum(o.read_bytes_total for o in fs.osts) == reads_before

    def test_warm_read_seconds_applies_read_factor(self):
        warm = WarmTier(read_bandwidth=1 * GB)
        t = warm.read_seconds(1 * GB)
        assert t == pytest.approx(1.0 / F4_EC.read_factor)
        assert warm.reads_served == 1


class TestScenariosAndStudy:
    def small(self, **kw) -> MetaStudySpec:
        base = dict(n_files=2_000, files_per_dir=200, n_epochs=1,
                    segment_bytes=4 * MiB)
        base.update(kw)
        return MetaStudySpec(**base)

    def test_untar_storm_builds_manifest_minus_temps(self):
        engine = Engine()
        tier = PerFileTier(make_fs())
        storm = UntarStorm(n_files=1000, files_per_dir=100,
                           temp_fraction=0.25,
                           sizes=TinyFileSizes(seed=5), duration=100.0)
        storm.install(engine, tier)
        engine.run(until=200.0)
        assert tier.logical_creates == 1000
        assert tier.logical_deletes == 250
        assert len(storm.manifest) == 750
        assert tier.fs.namespace.n_files == 750

    def test_tiny_file_sizes_are_seeded_and_bounded(self):
        a = TinyFileSizes(seed=9)
        b = TinyFileSizes(seed=9)
        draws = [a.draw() for _ in range(500)]
        assert draws == [b.draw() for _ in range(500)]
        assert all(256 <= d <= 512 * KiB for d in draws)

    def test_meta_fault_validation(self):
        with pytest.raises(ValueError):
            MetaFault(time=0.0, kind="disk-on-fire")
        with pytest.raises(ValueError):
            MetaFault(time=-1.0, kind="ost-fill")

    def test_study_same_seed_is_equal(self):
        first = run_meta_study(self.small())
        again = run_meta_study(self.small())
        assert first == again

    def test_study_different_seed_differs(self):
        a = run_meta_study(self.small(seed=1))
        b = run_meta_study(self.small(seed=2))
        assert a != b

    def test_study_telemetry_on_off_is_bit_identical(self):
        plain = run_meta_study(self.small())
        telemetry = Telemetry(enabled=True)
        with use_telemetry(telemetry):
            instrumented = run_meta_study(self.small())
        assert instrumented == plain
        names = {c.name for c in telemetry.counters()}
        assert "metatier.needle_writes" in names

    def test_aggregated_tier_beats_baseline_by_10x(self):
        result = run_meta_study(self.small(with_faults=False))
        assert result.throughput_gain >= 10.0
        assert (result.aggregated.mds_busy_makespan
                < result.baseline.mds_busy_makespan)
        # Both arms replay the same logical workload.
        assert result.aggregated.logical_ops == result.baseline.logical_ops
        assert result.aggregated.n_purged == result.baseline.n_purged

    def test_study_exercises_the_whole_tier(self):
        result = run_meta_study(self.small())
        agg = result.aggregated
        assert agg.n_segments and agg.n_segments > 0
        assert agg.n_segments_migrated and agg.n_segments_migrated > 0
        assert agg.observed_cache_hit_rate == pytest.approx(0.8, abs=0.1)
        assert agg.warm_logical_bytes and agg.warm_logical_bytes > 0
        assert agg.shard_balance and 0.0 < agg.shard_balance <= 1.0
        # The purge removed the day-old untar output in both arms.
        assert result.baseline.n_purged > 0

    def test_faults_hit_both_arms(self):
        quiet = run_meta_study(self.small(with_faults=False))
        noisy = run_meta_study(self.small(with_faults=True))
        assert (noisy.baseline.mds_busy_makespan
                > quiet.baseline.mds_busy_makespan)
        assert (noisy.aggregated.mds_busy_makespan
                > quiet.aggregated.mds_busy_makespan)


class TestAggregatedTierUnit:
    def test_read_path_cache_hits_skip_the_store(self):
        fs = make_sharded()
        store = SegmentStore(fs, spec=small_spec())
        tier = AggregatedTier(fs, [store], cache_hit_rate=1.0)
        tier.mkdir("/d", 0.0)
        tier.create("/d/f", 1000, 0.0)
        reads_before = store.counters.reads
        for _ in range(10):
            tier.read("/d/f", 1.0)
        assert store.counters.reads == reads_before  # all hits
        tier2_fs = make_sharded()
        store2 = SegmentStore(tier2_fs, spec=small_spec())
        tier2 = AggregatedTier(tier2_fs, [store2], cache_hit_rate=0.0)
        tier2.mkdir("/d", 0.0)
        tier2.create("/d/f", 1000, 0.0)
        for _ in range(10):
            tier2.read("/d/f", 1.0)
        assert store2.counters.reads == 10  # all misses

    def test_creates_cost_no_mds_ops(self):
        fs = make_sharded()
        store = SegmentStore(fs, spec=small_spec())
        tier = AggregatedTier(fs, [store])
        tier.mkdir("/d", 0.0)
        ops_after_setup = tier.metadata_ops()
        for i in range(50):
            tier.create(f"/d/f{i}", 1000, 0.0)
        # Segment-level ops only (the store-root mkdir + one segment
        # create; all 50 needles fit one 1 MiB segment).
        assert tier.metadata_ops() - ops_after_setup <= 2
