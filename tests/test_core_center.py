"""HPC-center model tests: the data-centric vs machine-exclusive tradeoffs."""

import pytest

from repro.core.center import (
    OLCF_RESOURCES,
    ComputeResource,
    HpcCenter,
    PfsModel,
    Workflow,
    WorkflowStage,
    checkpoint_analysis_workflow,
)
from repro.units import PB, TB


@pytest.fixture
def data_centric():
    return HpcCenter(model=PfsModel.DATA_CENTRIC)


@pytest.fixture
def exclusive():
    return HpcCenter(model=PfsModel.MACHINE_EXCLUSIVE)


class TestCapacityRule:
    def test_olcf_aggregate_memory_770tb(self, data_centric):
        assert data_centric.aggregate_memory_bytes == 770 * TB

    def test_thirty_x_target_met_by_spider2(self, data_centric):
        # 770 TB x 30 = 23.1 PB < 32 PB (§VII).
        assert data_centric.capacity_target_bytes() == 23_100 * TB
        assert data_centric.meets_capacity_target()

    def test_headroom_supports_new_resource(self, data_centric):
        headroom = data_centric.headroom_for_new_resource()
        assert headroom > 250 * TB  # "margin for accommodating new systems"

    def test_headroom_zero_when_at_target(self):
        center = HpcCenter(pfs_capacity_bytes=23 * PB)
        assert center.headroom_for_new_resource() == 0


class TestCost:
    def test_exclusive_storage_costs_more(self, data_centric, exclusive):
        # ">10% of the total acquisition cost" per machine + movers.
        assert exclusive.storage_cost() > data_centric.storage_cost()

    def test_adding_resource_free_under_data_centric_margin(self, data_centric):
        small = ComputeResource("summitdev", memory_bytes=40 * TB,
                                acquisition_cost=8.0)
        assert data_centric.cost_of_adding_resource(small) == 0.0

    def test_adding_resource_costs_under_exclusive(self, exclusive):
        small = ComputeResource("summitdev", memory_bytes=40 * TB,
                                acquisition_cost=8.0)
        assert exclusive.cost_of_adding_resource(small) == pytest.approx(0.8)

    def test_oversized_addition_needs_expansion(self, data_centric):
        huge = ComputeResource("summit", memory_bytes=2000 * TB,
                               acquisition_cost=200.0)
        assert data_centric.cost_of_adding_resource(huge) > 0.0


class TestDataMovement:
    def test_data_centric_moves_nothing(self, data_centric):
        wf = checkpoint_analysis_workflow()
        assert data_centric.workflow_movement_bytes(wf) == 0

    def test_exclusive_copies_each_handoff(self, exclusive):
        wf = checkpoint_analysis_workflow(checkpoint_bytes=450 * TB,
                                          reduced_bytes=40 * TB)
        moved = exclusive.workflow_movement_bytes(wf)
        assert moved == 450 * TB + 40 * TB

    def test_same_resource_stage_free(self, exclusive):
        wf = Workflow("local", (
            WorkflowStage("titan", 0, 100),
            WorkflowStage("titan", 100, 10),
        ))
        assert exclusive.workflow_movement_bytes(wf) == 0

    def test_unknown_resource_rejected(self, exclusive):
        wf = Workflow("bad", (WorkflowStage("nonexistent", 0, 1),))
        with pytest.raises(KeyError):
            exclusive.workflow_movement_bytes(wf)


class TestAvailability:
    def test_data_centric_survives_compute_outage(self, data_centric):
        assert data_centric.data_availability("titan") == 1.0

    def test_exclusive_loses_data_with_machine(self, exclusive):
        avail = exclusive.data_availability("titan")
        assert avail == pytest.approx(1 - 710 / 770)

    def test_exclusive_all_up(self, exclusive):
        assert exclusive.data_availability(None) == 1.0


class TestValidation:
    def test_duplicate_resources_rejected(self):
        r = ComputeResource("x", memory_bytes=1, acquisition_cost=1.0)
        with pytest.raises(ValueError):
            HpcCenter(resources=(r, r))

    def test_empty_center_rejected(self):
        with pytest.raises(ValueError):
            HpcCenter(resources=())

    def test_resource_validation(self):
        with pytest.raises(ValueError):
            ComputeResource("x", memory_bytes=0, acquisition_cost=1.0)
        with pytest.raises(ValueError):
            ComputeResource("x", memory_bytes=1, acquisition_cost=1.0,
                            availability=0.0)

    def test_workflow_needs_stages(self):
        with pytest.raises(ValueError):
            Workflow("empty", ())
