"""Release-testing model tests (Lesson 9)."""

import pytest

from repro.ops.release_testing import (
    CandidateRelease,
    CampaignOutcome,
    LatentDefect,
    ScaleTestCampaign,
)


class TestLatentDefect:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatentDefect(0, trigger_scale=0, detect_probability=0.5)
        with pytest.raises(ValueError):
            LatentDefect(0, trigger_scale=1, detect_probability=0.0)


class TestCandidateRelease:
    def test_deterministic_by_seed(self):
        a = CandidateRelease(seed=3)
        b = CandidateRelease(seed=3)
        assert [d.trigger_scale for d in a.defects] == \
               [d.trigger_scale for d in b.defects]

    def test_heavy_tail_of_trigger_scales(self):
        release = CandidateRelease(seed=2, n_defects=200)
        # Most defects are small-scale, but a material tail isn't.
        assert release.defects_above(2) < 200
        assert release.defects_above(256) >= 15
        assert release.defects_above(256) <= 100

    def test_explicit_defects_respected(self):
        defects = [LatentDefect(0, 10, 0.9), LatentDefect(1, 10_000, 0.9)]
        release = CandidateRelease(defects=defects, n_defects=2)
        assert release.defects_above(100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateRelease(n_defects=-1)


class TestScaleTestCampaign:
    def _release(self):
        return CandidateRelease(defects=[
            LatentDefect(0, 10, 0.99),
            LatentDefect(1, 1_000, 0.99),
            LatentDefect(2, 10_000, 0.99),
        ], n_defects=3)

    def test_scale_gates_detection(self):
        release = self._release()
        small = ScaleTestCampaign(100, n_runs=20, seed=1).run(release)
        big = ScaleTestCampaign(18_688, n_runs=20, seed=1).run(release)
        assert small.caught == 1
        assert small.escaped_large_scale == 2
        assert big.caught == 3
        assert big.escaped == 0

    def test_more_runs_catch_flaky_defects(self):
        release = CandidateRelease(defects=[
            LatentDefect(0, 10, 0.5)], n_defects=1)
        once = sum(
            ScaleTestCampaign(100, n_runs=1, seed=s).run(release).caught
            for s in range(200)
        )
        many = sum(
            ScaleTestCampaign(100, n_runs=10, seed=s).run(release).caught
            for s in range(200)
        )
        assert many > once

    def test_outcome_rows_and_rate(self):
        outcome = CampaignOutcome(test_scale=100, n_runs=2, caught=3,
                                  escaped=1, escaped_large_scale=1)
        assert outcome.catch_rate == pytest.approx(0.75)
        assert len(outcome.rows()) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleTestCampaign(0)
        with pytest.raises(ValueError):
            ScaleTestCampaign(10, n_runs=0)
