"""LNET routing policy tests: FGR vs round robin."""

import numpy as np
import pytest

from repro.network.infiniband import FabricSpec, InfinibandFabric
from repro.network.lnet import (
    FineGrainedRouting,
    LnetConfig,
    RouterInfo,
    RoundRobinRouting,
)
from repro.network.torus import Torus3D, TorusSpec


@pytest.fixture
def config():
    torus = Torus3D(TorusSpec(dims=(8, 8, 8)))
    fabric = InfinibandFabric(FabricSpec(n_leaf_switches=2))
    routers = [
        RouterInfo("r0", (0, 0, 0), leaf=0),
        RouterInfo("r1", (4, 4, 4), leaf=0),
        RouterInfo("r2", (0, 4, 0), leaf=1),
        RouterInfo("r3", (4, 0, 4), leaf=1),
    ]
    for r in routers:
        fabric.attach_host(r.name, r.leaf)
    return LnetConfig(torus, fabric, routers)


class TestLnetConfig:
    def test_routers_for_leaf(self, config):
        assert [r.name for r in config.routers_for_leaf(0)] == ["r0", "r1"]
        assert [r.name for r in config.routers_for_leaf(1)] == ["r2", "r3"]

    def test_empty_routers_rejected(self, config):
        with pytest.raises(ValueError):
            LnetConfig(config.torus, config.fabric, [])


class TestFgr:
    def test_leaf_affinity(self, config):
        fgr = FineGrainedRouting(config, slack=0)
        router = fgr.select_router((0, 0, 1), dst_leaf=1)
        assert router.leaf == 1

    def test_picks_nearest_with_zero_slack(self, config):
        fgr = FineGrainedRouting(config, slack=0)
        assert fgr.select_router((0, 0, 1), dst_leaf=0).name == "r0"
        assert fgr.select_router((4, 4, 3), dst_leaf=0).name == "r1"

    def test_load_spreading_within_slack(self, config):
        # Every router of leaf 0 is within slack of a central client, so
        # repeated selections alternate rather than piling on one.
        fgr = FineGrainedRouting(config, slack=12)
        picks = [fgr.select_router((2, 2, 2), dst_leaf=0).name for _ in range(10)]
        assert picks.count("r0") == 5
        assert picks.count("r1") == 5

    def test_unknown_leaf_raises(self, config):
        fgr = FineGrainedRouting(config)
        with pytest.raises(LookupError):
            fgr.select_router((0, 0, 0), dst_leaf=9)

    def test_negative_slack_rejected(self, config):
        with pytest.raises(ValueError):
            FineGrainedRouting(config, slack=-1)


class TestRoundRobin:
    def test_cycles_all_routers_ignoring_leaf(self, config):
        rr = RoundRobinRouting(config)
        picks = [rr.select_router((0, 0, 0), dst_leaf=0).name for _ in range(8)]
        assert picks == ["r0", "r1", "r2", "r3"] * 2
        # Half the picks land on the wrong leaf — the FGR-vs-naive cost.
        rr2 = RoundRobinRouting(config)
        wrong = sum(rr2.select_router((0, 0, 0), dst_leaf=0).leaf != 0
                    for _ in range(8))
        assert wrong == 4


class TestPolicyComparison:
    def test_fgr_shorter_torus_paths_than_rr(self, config):
        """FGR's selections are never farther than round robin's on
        average — the locality half of Lesson 14."""
        rng = np.random.default_rng(3)
        clients = [tuple(rng.integers(0, 8, size=3)) for _ in range(60)]
        fgr = FineGrainedRouting(config)
        rr = RoundRobinRouting(config)
        d_fgr = np.mean([
            config.torus.distance(c, fgr.select_router(c, 0).coord)
            for c in clients
        ])
        d_rr = np.mean([
            config.torus.distance(c, rr.select_router(c, 0).coord)
            for c in clients
        ])
        assert d_fgr <= d_rr

    def test_fgr_always_intra_leaf_rr_often_not(self, config):
        fgr = FineGrainedRouting(config)
        rr = RoundRobinRouting(config)
        fgr_crossings = [
            config.fabric.crossings(fgr.select_router((1, 1, 1), 1).name, "r2")
            for _ in range(8)
        ]
        assert all(c == 1 for c in fgr_crossings)  # r2/r3 share leaf 1


class TestTieBreakOrderInvariance:
    """FGR ties break by explicit (load, distance, name) key, so selection
    is invariant under the insertion order of the router inventory —
    list-position tie-breaking would silently re-route whole client
    populations whenever enumeration order changed."""

    def make_config(self, order):
        torus = Torus3D(TorusSpec(dims=(8, 8, 8)))
        fabric = InfinibandFabric(FabricSpec(n_leaf_switches=2))
        # Two exact ties on leaf 0: equidistant from the client below and
        # always equally loaded when selections alternate.
        routers = {
            "ra": RouterInfo("ra", (2, 0, 0), leaf=0),
            "rb": RouterInfo("rb", (0, 2, 0), leaf=0),
            "rc": RouterInfo("rc", (4, 4, 4), leaf=1),
        }
        ordered = [routers[name] for name in order]
        for r in ordered:
            fabric.attach_host(r.name, r.leaf)
        return LnetConfig(torus, fabric, ordered)

    @pytest.mark.parametrize("order", [
        ("ra", "rb", "rc"),
        ("rb", "ra", "rc"),
        ("rc", "rb", "ra"),
    ])
    def test_selection_sequence_is_order_invariant(self, order):
        fgr = FineGrainedRouting(self.make_config(order), slack=4)
        picks = [fgr.select_router((0, 0, 0), dst_leaf=0).name
                 for _ in range(6)]
        # Pure tie at every step: the name key alternates a-b-a-b...,
        # never whichever happened to be inserted first.
        assert picks == ["ra", "rb"] * 3
