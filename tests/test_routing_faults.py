"""Routing under faults: flap dampening against the PR-2 injectors,
dimension-ordered routing under partial router-module failure, and the
scripted router-fault scenarios."""

import pytest

from repro.core.path import PathBuilder, Transfer
from repro.faults import (
    FaultClass,
    flapping_router_scenario,
    hotspot_storm_scenario,
    injector_for,
)
from repro.lustre.client import Client
from repro.network.lnet import FineGrainedRouting
from repro.network.routing import FlowletRouting, FlowletSpec
from repro.obs.instruments import Telemetry, use_telemetry


def make_transfers(system, n_clients=3, n_osts=6):
    dims = system.torus.dims
    clients = [Client(f"c{i}", coord=(i % dims[0], 0, i % dims[2]))
               for i in range(n_clients)]
    osts = tuple(range(0, n_osts))
    return [Transfer(c.name, c, osts, write=False) for c in clients]


def drive_flaps(system, policy, plan, *, tick=30.0, until=2000.0):
    """Replay ``plan`` through the real injector while sampling the
    refresh/resolve loop on a fixed cadence; returns the builder."""
    builder = PathBuilder(system, policy=policy, include_torus=True)
    transfers = make_transfers(system)
    events = sorted(
        [(f.time, "inject", f) for f in plan.faults]
        + [(f.repair_time, "repair", f) for f in plan.faults])
    t = 0.0
    while t <= until:
        while events and events[0][0] <= t:
            _when, kind, fault = events.pop(0)
            if kind == "inject":
                injector_for(fault).inject(system, fault)
            else:
                injector_for(fault).repair(system, fault, None)
        if isinstance(policy, FlowletRouting):
            policy.refresh(t)
        builder.resolve(transfers)
        t += tick
    return builder


class TestFlapDampening:
    def test_undampened_policy_rebuilds_every_flap(self, mini_system):
        plan = flapping_router_scenario(mini_system, cycles=5, period=120.0,
                                        start=300.0)
        policy = FineGrainedRouting(mini_system.lnet)
        builder = drive_flaps(mini_system, policy, plan)
        # One initial build plus one per transition: 5 downs + 5 ups.
        assert builder.solve_counts["full"] == 11

    def test_flowlet_dampening_bounds_rebuilds(self, mini_system):
        plan = flapping_router_scenario(mini_system, cycles=5, period=120.0,
                                        start=300.0)
        # Flaps bounce every 60 s; the dampener wants 180 s of stability,
        # so no transition ever commits into the resolve fingerprint.
        policy = FlowletRouting(
            mini_system.lnet, spec=FlowletSpec(reroute_dwell_s=180.0))
        builder = drive_flaps(mini_system, policy, plan)
        assert builder.solve_counts["full"] == 1
        assert policy.reroute_commits == 0

    def test_flowlet_commits_once_when_the_router_stays_dead(self, mini_system):
        plan = flapping_router_scenario(mini_system, cycles=1, period=4000.0,
                                        start=300.0)
        policy = FlowletRouting(
            mini_system.lnet, spec=FlowletSpec(reroute_dwell_s=180.0))
        builder = drive_flaps(mini_system, policy, plan, until=1500.0)
        # Down at 300 s and held: exactly one commit, one extra rebuild.
        assert policy.reroute_commits == 1
        assert builder.solve_counts["full"] == 2

    def test_delta_path_carries_the_interim(self, mini_system):
        # Between flap and commit the dampened policy must still see the
        # outage: the dead router's IB cable reads zero on the delta
        # path, so its flows deliver nothing without any rebuild.
        policy = FlowletRouting(
            mini_system.lnet, spec=FlowletSpec(reroute_dwell_s=10_000.0))
        builder = PathBuilder(mini_system, policy=policy, include_torus=True)
        transfers = make_transfers(mini_system)
        result = builder.resolve(transfers)
        victim = max(builder.router_usage(), key=builder.router_usage().get)
        baseline = sum(builder.transfer_rates(result, transfers).values())
        fault = flapping_router_scenario(
            mini_system, router_name=victim, cycles=1).faults[0]
        injector_for(fault).inject(mini_system, fault)
        policy.refresh(fault.time)
        degraded = builder.resolve(transfers)
        assert builder.solve_counts["full"] == 1  # no rebuild happened
        assert sum(builder.transfer_rates(
            degraded, transfers).values()) < baseline


class TestDorPartialModuleFailure:
    """Static dimension-ordered FGR when a router module half-dies."""

    def leaf_and_routers(self, system):
        oss = system.oss_of_ost(0)
        routers = system.lnet.routers_for_leaf(oss.leaf)
        assert len(routers) >= 2
        return oss.leaf, routers

    def transfers_to_ost0(self, system):
        client = Client("c0", coord=(0, 0, 0))
        return [Transfer("c0", client, (0,), write=False)]

    def test_partial_failure_reroutes_within_the_module(self, mini_system):
        _leaf, routers = self.leaf_and_routers(mini_system)
        policy = FineGrainedRouting(mini_system.lnet)
        builder = PathBuilder(mini_system, policy=policy, include_torus=True)
        transfers = self.transfers_to_ost0(mini_system)
        for r in routers[:-1]:  # all but one slot of the module fails
            mini_system.lnet.set_router_online(r.name, False)
        result = builder.resolve(transfers)
        assert builder.unroutable_flows == 0
        rates = builder.transfer_rates(result, transfers)
        assert rates["c0"] > 0
        survivor = routers[-1].name
        assert builder.router_usage() == {survivor: 1}

    def test_total_failure_counts_unroutable_flows(self, mini_system):
        leaf, routers = self.leaf_and_routers(mini_system)
        policy = FineGrainedRouting(mini_system.lnet)
        builder = PathBuilder(mini_system, policy=policy, include_torus=True)
        transfers = self.transfers_to_ost0(mini_system)
        telemetry = Telemetry(enabled=True)
        with use_telemetry(telemetry):
            for r in routers:
                mini_system.lnet.set_router_online(r.name, False)
            result = builder.resolve(transfers)
        assert builder.unroutable_flows == 1
        assert telemetry.counter("flow.unroutable").value == 1.0
        assert builder.transfer_rates(result, transfers)["c0"] == 0.0

    def test_repair_recovers_the_path(self, mini_system):
        leaf, routers = self.leaf_and_routers(mini_system)
        policy = FineGrainedRouting(mini_system.lnet)
        builder = PathBuilder(mini_system, policy=policy, include_torus=True)
        transfers = self.transfers_to_ost0(mini_system)
        for r in routers:
            mini_system.lnet.set_router_online(r.name, False)
        builder.resolve(transfers)
        assert builder.unroutable_flows == 1
        mini_system.lnet.set_router_online(routers[0].name, True)
        result = builder.resolve(transfers)  # fingerprint moved: rebuild
        assert builder.unroutable_flows == 0
        assert builder.transfer_rates(result, transfers)["c0"] > 0


class TestScenarioShapes:
    def test_flapping_scenario_layout(self, mini_system):
        plan = flapping_router_scenario(mini_system, cycles=3, period=100.0,
                                        start=50.0)
        assert [f.time for f in plan.faults] == [50.0, 150.0, 250.0]
        assert all(f.fault is FaultClass.ROUTER_FAIL for f in plan.faults)
        assert all(f.duration == 50.0 for f in plan.faults)
        names = {f.target for f in plan.faults}
        assert names == {mini_system.routers[0].name}

    def test_flapping_scenario_validation(self, mini_system):
        with pytest.raises(ValueError):
            flapping_router_scenario(mini_system, cycles=0)
        with pytest.raises(ValueError):
            flapping_router_scenario(mini_system, period=0.0)

    def test_hotspot_scenario_layout(self, mini_system):
        plan = hotspot_storm_scenario(mini_system, storm_start=1000.0,
                                      fail_after=200.0, outage=300.0)
        (fault,) = plan.faults
        assert fault.time == 1200.0
        assert fault.duration == 300.0
        assert fault.fault is FaultClass.ROUTER_FAIL

    def test_hotspot_scenario_validation(self, mini_system):
        with pytest.raises(ValueError):
            hotspot_storm_scenario(mini_system, outage=0.0)
