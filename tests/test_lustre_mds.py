"""Metadata server tests: rates, stat amplification, DNE vs namespaces."""

import pytest

from repro.lustre.mds import MdsSpec, MetadataCluster, MetadataServer, OpMix


class TestMetadataServer:
    def test_service_time_additive(self):
        mds = MetadataServer()
        t = mds.service_time(OpMix(creates=15_000))
        assert t == pytest.approx(1.0)
        assert mds.ops_served == 15_000
        assert mds.busy_seconds == pytest.approx(1.0)

    def test_stat_amplification_with_stripes(self):
        """Wide-striped files make stat expensive — the §VII best practice
        of single-OST striping for small files."""
        mds = MetadataServer()
        narrow = mds.sustainable_rate(OpMix(stats=1000, mean_stripe_count=1))
        wide = mds.sustainable_rate(OpMix(stats=1000, mean_stripe_count=16))
        assert narrow > 2 * wide

    def test_sustainable_rate_matches_service_time(self):
        mds = MetadataServer()
        mix = OpMix(creates=600, stats=300, unlinks=100, mean_stripe_count=4)
        rate = mds.sustainable_rate(mix)
        probe = MetadataServer()
        t = probe.service_time(mix)
        assert rate == pytest.approx(mix.total_ops / t)

    def test_sustainable_rate_empty_mix_infinite(self):
        assert MetadataServer().sustainable_rate(OpMix()) == float("inf")

    def test_probe_does_not_mutate(self):
        mds = MetadataServer()
        mds.sustainable_rate(OpMix(creates=100))
        assert mds.ops_served == 0

    def test_mix_scaling(self):
        mix = OpMix(creates=10, stats=20, readdir_entries=100)
        scaled = mix.scaled(2.0)
        assert scaled.creates == 20 and scaled.stats == 40
        assert scaled.readdir_entries == 200

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MdsSpec(create_rate=0)
        with pytest.raises(ValueError):
            MdsSpec(stat_ost_rpc_cost=-1)


class TestMetadataCluster:
    MIX = OpMix(creates=500, stats=400, unlinks=100, mean_stripe_count=2)

    def test_single_server_baseline(self):
        cluster = MetadataCluster(1)
        single = MetadataServer().sustainable_rate(self.MIX)
        assert cluster.sustainable_rate(self.MIX) == pytest.approx(single)

    def test_namespaces_scale_with_imbalance_tax(self):
        """The Spider design: 2 namespaces ≈ 2 × 0.85 the single-MDS rate."""
        cluster = MetadataCluster(2, mode="namespaces", balance=0.85)
        assert cluster.speedup_over_single(self.MIX) == pytest.approx(1.7)

    def test_dne_scales_with_overhead_tax(self):
        cluster = MetadataCluster(4, mode="dne", dne_overhead=0.10)
        assert cluster.speedup_over_single(self.MIX) == pytest.approx(4 / 1.1)

    def test_multiple_namespaces_beat_single(self):
        """§IV-C's core claim: one MDS cannot sustain the center-wide
        metadata rate; splitting namespaces raises the ceiling."""
        single = MetadataCluster(1)
        multi = MetadataCluster(4, mode="namespaces")
        assert multi.sustainable_rate(self.MIX) > 3 * single.sustainable_rate(self.MIX)

    def test_validation(self):
        with pytest.raises(ValueError):
            MetadataCluster(0)
        with pytest.raises(ValueError):
            MetadataCluster(2, mode="bogus")
        with pytest.raises(ValueError):
            MetadataCluster(2, balance=0.0)
        with pytest.raises(ValueError):
            MetadataCluster(2, dne_overhead=-0.1)


class TestEdgeCases:
    """Degenerate inputs pinned so refactors cannot drift them: the metatier
    sharding layer leans on these exact behaviours."""

    MIX = OpMix(creates=600, stats=300, unlinks=100, renames=20, links=10)

    def test_speedup_over_single_is_exactly_one_at_one_server(self):
        for mode in ("namespaces", "dne"):
            cluster = MetadataCluster(1, mode=mode)
            # Exact equality, not approx: with one server no balance or
            # DNE tax may apply, so the ratio must be bit-identical 1.0.
            assert cluster.speedup_over_single(self.MIX) == 1.0

    def test_scaled_zero_is_the_empty_mix(self):
        scaled = self.MIX.scaled(0)
        assert scaled.total_ops == 0
        assert scaled == OpMix(mean_stripe_count=self.MIX.mean_stripe_count)
        # Stripe geometry is a property of the files, not the volume of
        # ops, so scaling must preserve it.
        wide = OpMix(stats=10, mean_stripe_count=16.0).scaled(0)
        assert wide.mean_stripe_count == 16.0

    def test_scaled_zero_costs_nothing(self):
        mds = MetadataServer()
        assert mds.service_time(self.MIX.scaled(0)) == 0.0
        assert mds.ops_served == 0
        assert mds.busy_seconds == 0.0

    def test_empty_mix_sustainable_rate_is_infinite_everywhere(self):
        empty = OpMix()
        assert MetadataServer().sustainable_rate(empty) == float("inf")
        for n in (1, 4):
            assert MetadataCluster(n).sustainable_rate(empty) == float("inf")
