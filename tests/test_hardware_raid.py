"""RAID geometry, min-of-members coupling, failure/journal mechanics."""

import numpy as np
import pytest

from repro.hardware.disk import DiskPopulation
from repro.hardware.raid import RaidGeometry, RaidGroup, RaidState, group_bandwidths
from repro.sim.rng import RngStreams
from repro.units import TB


@pytest.fixture
def pop():
    return DiskPopulation(40, rng=RngStreams(0), block_slow_fraction=0.0,
                          fs_slow_fraction=0.0, healthy_sigma=0.0)


def make_group(pop, members=None, **kwargs):
    return RaidGroup(RaidGeometry(), pop, members or list(range(10)), **kwargs)


class TestGeometry:
    def test_spider_geometry(self):
        g = RaidGeometry()
        assert g.width == 10
        assert g.fault_tolerance == 2
        assert g.usable_fraction() == pytest.approx(0.8)

    def test_rebuild_time(self):
        g = RaidGeometry()
        t = g.rebuild_time(2 * TB)
        assert t == pytest.approx(2 * TB / g.rebuild_rate)
        assert g.rebuild_time(2 * TB, declustered=True) == pytest.approx(
            t / g.declustering_speedup)

    def test_validation(self):
        with pytest.raises(ValueError):
            RaidGeometry(n_data=0)
        with pytest.raises(ValueError):
            RaidGeometry(rebuild_rate=0)
        with pytest.raises(ValueError):
            RaidGeometry(declustering_speedup=0.5)


class TestRaidGroup:
    def test_usable_capacity(self, pop):
        assert make_group(pop).usable_capacity == 8 * pop.spec.capacity_bytes

    def test_member_validation(self, pop):
        with pytest.raises(ValueError):
            make_group(pop, members=list(range(9)))
        with pytest.raises(ValueError):
            make_group(pop, members=[0] * 10)

    def test_streaming_is_min_of_members(self, pop):
        group = make_group(pop)
        base = group.streaming_bandwidth()
        assert base == pytest.approx(8 * pop.spec.seq_bw)
        pop.speed_factor[4] = 0.5  # one slow member drags the whole group
        assert group.streaming_bandwidth() == pytest.approx(base * 0.5)

    def test_state_machine(self, pop):
        group = make_group(pop)
        assert group.state is RaidState.CLEAN
        group.erase_member(0)
        assert group.state is RaidState.DEGRADED
        group.erase_member(1)
        assert group.state is RaidState.DEGRADED
        group.erase_member(2)
        assert group.state is RaidState.FAILED
        assert group.data_lost

    def test_rebuilding_counts_toward_effective_erasures(self, pop):
        group = make_group(pop)
        group.erase_member(0)
        group.restore_member(0)  # rebuilding now
        assert group.state is RaidState.REBUILDING
        assert group.effective_erasures == 1
        group.erase_member(1)
        group.erase_member(2)
        # 2 erased + 1 rebuilding = 3 > tolerance
        assert group.state is RaidState.FAILED

    def test_restore_with_rebuilt_skips_rebuild(self, pop):
        group = make_group(pop)
        group.erase_member(0)
        group.restore_member(0, rebuilt=True)
        assert group.state is RaidState.CLEAN

    def test_finish_rebuild(self, pop):
        group = make_group(pop)
        group.erase_member(0)
        group.restore_member(0)
        group.finish_rebuild(0)
        assert group.state is RaidState.CLEAN

    def test_degraded_pays_reconstruction_penalty(self, pop):
        group = make_group(pop)
        clean = group.streaming_bandwidth()
        group.erase_member(0)
        assert group.streaming_bandwidth() == pytest.approx(clean * 0.6)

    def test_failed_group_moves_nothing(self, pop):
        group = make_group(pop)
        for m in range(3):
            group.erase_member(m)
        assert group.streaming_bandwidth() == 0.0

    def test_journal_lost_on_failure(self, pop):
        group = make_group(pop)
        group.journal.stage(1000)
        for m in range(3):
            group.erase_member(m)
        assert group.journal.lost_files == 1000
        assert group.journal.dirty_files == 0

    def test_journal_commit(self, pop):
        group = make_group(pop)
        group.journal.stage(10)
        assert group.journal.commit() == 10
        assert group.journal.dirty_files == 0

    def test_erase_out_of_range(self, pop):
        with pytest.raises(IndexError):
            make_group(pop).erase_member(10)


class TestGroupBandwidths:
    def test_vectorized_matches_scalar(self, pop):
        members = np.array([list(range(10)), list(range(10, 20))])
        pop.speed_factor[13] = 0.7
        bw = group_bandwidths(members, pop.bandwidths())
        g0 = make_group(pop, list(range(10)))
        g1 = make_group(pop, list(range(10, 20)))
        assert bw[0] == pytest.approx(g0.streaming_bandwidth())
        assert bw[1] == pytest.approx(g1.streaming_bandwidth())

    def test_shape_validation(self, pop):
        with pytest.raises(ValueError):
            group_bandwidths(np.arange(10), pop.bandwidths())

    def test_min_of_members_amplification(self):
        """With p≈7.4% slow drives, over half of 10-wide groups contain at
        least one slow member — the statistical heart of Lesson 13."""
        pop = DiskPopulation(20_160, rng=RngStreams(2))
        members = np.arange(20_160).reshape(-1, 10)
        bw = group_bandwidths(members, pop.bandwidths())
        nominal = 8 * pop.spec.seq_bw
        frac_dragged = np.mean(bw < 0.95 * nominal)
        assert 0.40 <= frac_dragged <= 0.65
