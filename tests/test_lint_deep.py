"""The deep-mode machinery behaves: the ProjectContext resolves calls
and aliases the way the rules assume, the taint engine propagates and
launders labels correctly, repeated runs are byte-identical, the parse
cache actually caches, SARIF output is well-formed, and the whole-program
pass over src/repro stays inside its wall-clock budget.

The fixture pairs in tests/lint_fixtures/deep/ are exercised from
tests/test_lint.py alongside the per-file fixtures; this module covers
the analysis infrastructure those rules stand on.
"""

from __future__ import annotations

import ast
import json
import time
from pathlib import Path

from repro.cli import main
from repro.lint import (
    FileContext,
    build_project,
    clear_parse_cache,
    lint_paths,
    parse_cache_stats,
    run_lint,
)
from repro.lint.dataflow import SET_LABEL, DataflowAnalysis
from repro.lint.project import type_is

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC = REPO / "src" / "repro"

#: documented wall-clock budget for one cold deep pass over src/repro;
#: CI enforces the same bound on the lint-deep job (ci.yml wraps the run
#: in `timeout`), so keep this constant and the workflow in step
DEEP_BUDGET_SECONDS = 60.0


def _ctx(source: str, path: str = "mod_a.py") -> FileContext:
    return FileContext.parse(source, path)


class TestProjectResolution:
    def test_module_name_from_repro_rel(self):
        ctx = _ctx("x = 1\n", "src/repro/core/flow.py")
        project = build_project([ctx])
        assert "repro.core.flow" in project.modules

    def test_module_name_for_fixture_files(self):
        project = build_project([_ctx("x = 1\n", "/tmp/fix_a.py")])
        assert "fix_a" in project.modules

    def test_ctor_assignment_types_the_attribute(self):
        src = (
            "from repro.core.flow import FlowNetwork\n\n\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._net = FlowNetwork()\n"
        )
        project = build_project([_ctx(src)])
        cls = project.classes["mod_a.Holder"]
        assert type_is(cls.attr_types["_net"], "FlowNetwork")

    def test_optional_annotation_types_the_attribute(self):
        src = (
            "from repro.core.flow import Epoch\n\n\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._epoch: Epoch | None = None\n"
        )
        project = build_project([_ctx(src)])
        cls = project.classes["mod_a.Holder"]
        assert type_is(cls.attr_types["_epoch"], "Epoch")

    def test_self_method_call_resolves(self):
        src = (
            "class C:\n"
            "    def a(self):\n"
            "        self.b()\n\n"
            "    def b(self):\n"
            "        pass\n"
        )
        project = build_project([_ctx(src)])
        assert project.callees("mod_a.C.a") == ("mod_a.C.b",)

    def test_attr_typed_receiver_method_resolves(self):
        src = (
            "class Worker:\n"
            "    def run(self):\n"
            "        pass\n\n\n"
            "class Boss:\n"
            "    def __init__(self):\n"
            "        self._w = Worker()\n\n"
            "    def go(self):\n"
            "        self._w.run()\n"
        )
        project = build_project([_ctx(src)])
        assert project.callees("mod_a.Boss.go") == ("mod_a.Worker.run",)

    def test_imported_function_resolves_across_modules(self):
        mod_a = _ctx("def helper():\n    pass\n", "mod_a.py")
        mod_b = _ctx(
            "from mod_a import helper\n\n\n"
            "def caller():\n"
            "    helper()\n",
            "mod_b.py")
        project = build_project([mod_a, mod_b])
        assert project.callees("mod_b.caller") == ("mod_a.helper",)

    def test_import_alias_resolves(self):
        mod_a = _ctx("def helper():\n    pass\n", "mod_a.py")
        mod_b = _ctx(
            "from mod_a import helper as h\n\n\n"
            "def caller():\n"
            "    h()\n",
            "mod_b.py")
        project = build_project([mod_a, mod_b])
        assert project.callees("mod_b.caller") == ("mod_a.helper",)

    def test_nested_function_resolves_by_name(self):
        src = (
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "    inner()\n"
        )
        project = build_project([_ctx(src)])
        assert project.callees("mod_a.outer") == ("mod_a.outer.inner",)

    def test_lambda_trampoline_resolves_func_refs(self):
        src = (
            "class C:\n"
            "    def handler(self, x):\n"
            "        pass\n\n"
            "    def arm(self, engine):\n"
            "        engine.call_after(1.0, lambda v=3: self.handler(v))\n"
        )
        project = build_project([_ctx(src)])
        fn = project.functions["mod_a.C.arm"]
        call = next(fn.calls())
        refs = project.resolve_func_refs(fn, call.args[1])
        assert refs == ["mod_a.C.handler"]

    def test_return_annotation_types_the_call_result(self):
        src = (
            "from repro.core.flow import FlowNetwork\n\n\n"
            "class Builder:\n"
            "    def build(self) -> FlowNetwork:\n"
            "        return FlowNetwork()\n\n"
            "    def solve(self):\n"
            "        return self.build().solve()\n"
        )
        project = build_project([_ctx(src)])
        fn = project.functions["mod_a.Builder.solve"]
        outer = next(c for c in fn.calls()
                     if isinstance(c.func, ast.Attribute)
                     and c.func.attr == "solve")
        assert type_is(project.expr_type(fn, outer.func.value), "FlowNetwork")

    def test_reachability_is_transitive(self):
        src = (
            "def a():\n    b()\n\n"
            "def b():\n    c()\n\n"
            "def c():\n    pass\n"
        )
        project = build_project([_ctx(src)])
        assert project.reachable(["mod_a.a"]) == {
            "mod_a.a", "mod_a.b", "mod_a.c"}

    def test_set_typed_attributes_indexed(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._members: set[str] = set()\n"
            "        self._groups: list[set[str]] = []\n"
            "        self._seen = {1.0}\n"
        )
        project = build_project([_ctx(src)])
        cls = project.classes["mod_a.C"]
        assert "_members" in cls.set_attrs
        assert "_seen" in cls.set_attrs
        assert "_groups" in cls.elem_set_attrs

    def test_dirty_attrs_indexed(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._dirty = set()\n"
            "        self._backbone_dirty = False\n"
        )
        project = build_project([_ctx(src)])
        cls = project.classes["mod_a.C"]
        assert cls.dirty_attrs == ["_dirty", "_backbone_dirty"]


class TestDataflow:
    @staticmethod
    def _analyze(body: str, classify=lambda node: frozenset()):
        fn = ast.parse(f"def f(p):\n{body}").body[0]
        return fn, DataflowAnalysis(fn, classify)

    def test_taint_propagates_through_assignment_and_arithmetic(self):
        def classify(node):
            if isinstance(node, ast.Name) and node.id == "p":
                return {"taint"}
            return frozenset()

        fn, analysis = self._analyze(
            "    x = p\n"
            "    y = x * 2.0\n"
            "    return y\n", classify)
        ret = fn.body[-1]
        assert "taint" in analysis.labels_of(ret.value)

    def test_loop_carried_labels_reach_the_body_top(self):
        def classify(node):
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id == "src":
                return {"taint"}
            return frozenset()

        fn, analysis = self._analyze(
            "    x = 0.0\n"
            "    for i in range(3):\n"
            "        use(x)\n"
            "        x = src()\n", classify)
        use = fn.body[1].body[0].value
        assert "taint" in analysis.labels_of(use.args[0])

    def test_set_literal_labeled_and_sorted_launders(self):
        fn, analysis = self._analyze(
            "    s = {1.0, 2.0}\n"
            "    t = sorted(s)\n"
            "    return (s, t)\n")
        ret = fn.body[-1].value
        s_expr, t_expr = ret.elts
        assert SET_LABEL in analysis.labels_of(s_expr)
        assert SET_LABEL not in analysis.labels_of(t_expr)

    def test_list_conversion_does_not_launder_setness(self):
        fn, analysis = self._analyze(
            "    s = list({1.0, 2.0})\n"
            "    return s\n")
        assert SET_LABEL in analysis.labels_of(fn.body[-1].value)


class TestDeepRunSemantics:
    def test_selecting_a_deep_rule_enables_the_deep_pass(self):
        bad = FIXTURES / "deep" / "epoch_safety_bad.py"
        findings = lint_paths([str(bad)], select=["epoch-safety"])
        assert findings and all(f.rule_id == "epoch-safety" for f in findings)

    def test_without_deep_the_fast_pass_stays_silent(self):
        bad = FIXTURES / "deep" / "epoch_safety_bad.py"
        assert lint_paths([str(bad)]) == []

    def test_pragma_suppresses_a_deep_finding(self, tmp_path):
        bad = (FIXTURES / "deep" / "dirty_state_bad.py").read_text()
        patched = bad.replace(
            "    def set_weight(self, name: str, weight: float) -> None:",
            "    # spider-lint: ignore[dirty-state] -- fixture justification\n"
            "    def set_weight(self, name: str, weight: float) -> None:")
        target = tmp_path / "dirty_state_suppressed.py"
        target.write_text(patched)
        assert lint_paths([str(target)], deep=True) == []

    def test_bad_fixture_fails_the_cli_gate(self):
        # The lint-deep CI job runs exactly this: a seeded violation must
        # exit nonzero.
        bad = FIXTURES / "deep" / "epoch_safety_bad.py"
        assert main(["lint", "--deep", str(bad)]) == 1

    def test_deep_findings_from_directory_run(self, tmp_path):
        for name in ("epoch_safety_bad.py", "telemetry_taint_bad.py"):
            (tmp_path / name).write_text(
                (FIXTURES / "deep" / name).read_text())
        findings = lint_paths([str(tmp_path)], deep=True)
        assert {f.rule_id for f in findings} == {"epoch-safety",
                                                 "telemetry-taint"}


class TestParseCache:
    def test_second_run_hits_for_every_file(self):
        clear_parse_cache()
        first = run_lint([str(FIXTURES / "deep")], deep=True)
        assert first.cache_misses == first.files and first.cache_hits == 0
        second = run_lint([str(FIXTURES / "deep")], deep=True)
        assert second.cache_hits == second.files and second.cache_misses == 0

    def test_edited_file_misses_and_reparses(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        clear_parse_cache()
        run_lint([str(target)])
        stats = parse_cache_stats()
        assert stats == {"hits": 0, "misses": 1}
        # Rewrite with a different size so the (mtime, size) key moves
        # even on filesystems with coarse mtime granularity.
        target.write_text("x = 12\n")
        run_lint([str(target)])
        assert parse_cache_stats()["misses"] == 2

    def test_cache_counters_surface_in_deep_json(self, capsys):
        clear_parse_cache()
        good = FIXTURES / "deep" / "epoch_safety_good.py"
        assert main(["lint", "--deep", str(good), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["files"] == 1
        assert payload["cache"] == {"hits": 0, "misses": 1}

    def test_fast_json_schema_is_unchanged_by_deep_mode(self, capsys):
        # Without --deep the payload stays a bare array (frozen schema).
        good = FIXTURES / "deep" / "epoch_safety_good.py"
        assert main(["lint", str(good), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestDeterminism:
    def test_two_deep_runs_are_byte_identical(self, capsys):
        # Byte-identical JSON across runs: same findings, same order,
        # same accounting.  The cache is cleared between runs so both
        # take the cold path.
        outs = []
        for _ in range(2):
            clear_parse_cache()
            main(["lint", "--deep", str(SRC), "--format", "json"])
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]


class TestSarif:
    def test_sarif_log_structure(self, capsys):
        bad = FIXTURES / "deep" / "telemetry_taint_bad.py"
        assert main(["lint", "--deep", str(bad), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "spider-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "telemetry-taint" in rule_ids
        assert all(r["shortDescription"]["text"] for r in driver["rules"])
        for result in run["results"]:
            assert result["ruleId"] == "telemetry-taint"
            assert result["level"] == "error"
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] > 0 and region["startColumn"] > 0

    def test_sarif_clean_run_has_rules_but_no_results(self, capsys):
        good = FIXTURES / "deep" / "telemetry_taint_good.py"
        assert main(["lint", str(good), "--format", "sarif"]) == 0
        (run,) = json.loads(capsys.readouterr().out)["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"]


class TestWallClock:
    def test_cold_deep_pass_within_budget(self):
        clear_parse_cache()
        t0 = time.perf_counter()  # spider-lint: ignore[determinism] -- wall-clock budget test
        report = run_lint([str(SRC)], deep=True)
        elapsed = time.perf_counter() - t0
        assert report.findings == []
        assert elapsed < DEEP_BUDGET_SECONDS, (
            f"deep pass took {elapsed:.1f}s, budget {DEEP_BUDGET_SECONDS}s")
