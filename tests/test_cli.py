"""CLI tests: every subcommand runs and prints its report."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_flag_global(self):
        args = build_parser().parse_args(["--seed", "7", "placement"])
        assert args.seed == 7


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "20160" in out
        assert "32.26 PB" in out

    def test_inventory_spider1(self, capsys):
        assert main(["inventory", "--system", "spider1"]) == 0
        assert "13440" in capsys.readouterr().out

    def test_layers(self, capsys):
        assert main(["layers"]) == 0
        out = capsys.readouterr().out
        assert "RAID groups" in out
        assert "couplets" in out

    def test_ior(self, capsys):
        assert main(["ior", "-n", "96", "--ppn", "16"]) == 0
        assert "aggregate" in capsys.readouterr().out

    def test_ior_optimal_upgraded(self, capsys):
        assert main(["ior", "-n", "96", "--ppn", "1",
                     "--placement", "optimal", "--upgraded"]) == 0

    def test_incident_both_designs(self, capsys):
        assert main(["incident", "--enclosures", "5"]) == 0
        assert "FAILED" in capsys.readouterr().out
        assert main(["incident", "--enclosures", "10"]) == 0
        assert "tolerated" in capsys.readouterr().out

    def test_placement_map(self, capsys):
        assert main(["placement"]) == 0
        out = capsys.readouterr().out
        assert "router groups" in out

    def test_workload(self, capsys):
        assert main(["workload", "--hours", "1"]) == 0
        assert "write fraction" in capsys.readouterr().out

    def test_interference(self, capsys):
        assert main(["interference"]) == 0
        assert "p99" in capsys.readouterr().out

    def test_reliability(self, capsys):
        assert main(["reliability", "--years", "3"]) == 0
        assert "disk failures" in capsys.readouterr().out

    def test_reliability_declustered(self, capsys):
        assert main(["reliability", "--years", "3", "--declustered"]) == 0
        assert "declustered" in capsys.readouterr().out


class TestNewCommands:
    def test_recovery_standard(self, capsys):
        assert main(["recovery"]) == 0
        out = capsys.readouterr().out
        assert "standard" in out
        assert "Router failure" in out

    def test_recovery_imperative(self, capsys):
        assert main(["recovery", "--imperative", "--hp-journaling"]) == 0
        assert "imperative" in capsys.readouterr().out

    def test_suite(self, capsys):
        assert main(["suite", "--ssu", "1"]) == 0
        out = capsys.readouterr().out
        assert "fs overhead" in out


class TestChaos:
    def test_random_campaign(self, capsys):
        assert main(["--seed", "7", "chaos", "--faults", "4"]) == 0
        out = capsys.readouterr().out
        assert "Bandwidth-degradation timeline" in out
        assert "availability" in out
        assert "Health-checker incident triage" in out

    def test_cable_scenario(self, capsys):
        assert main(["chaos", "--scenario", "cable"]) == 0
        out = capsys.readouterr().out
        assert "cable_fail" in out
        assert "Recovery time per fault class" in out

    def test_trace_records_fault_spans(self, tmp_path, capsys):
        trace = tmp_path / "chaos.json"
        assert main(["chaos", "--scenario", "cable",
                     "--trace", str(trace)]) == 0
        from repro.obs.trace import read_chrome_trace

        data = read_chrome_trace(trace)
        assert any(e.get("cat") == "faults" for e in data["traceEvents"])
        assert "telemetry" in data

    def test_remediate_closes_the_loop(self, capsys):
        assert main(["chaos", "--scenario", "cable", "--remediate"]) == 0
        out = capsys.readouterr().out
        assert "Closed-loop remediation" in out
        assert "mean MTTD" in out
        assert "MTTD/MTTR decomposition per fault class" in out
        assert "mean recovery" in out  # the upgraded stats table

    def test_remediate_trace_records_pipeline_spans(self, tmp_path, capsys):
        trace = tmp_path / "remediate.json"
        assert main(["chaos", "--scenario", "cable", "--remediate",
                     "--trace", str(trace)]) == 0
        from repro.obs.trace import read_chrome_trace

        events = read_chrome_trace(trace)["traceEvents"]
        names = [e.get("name", "") for e in events
                 if e.get("cat") == "resilience"]
        for stage in ("detect:", "decide:", "act:", "verify:"):
            assert any(n.startswith(stage) for n in names)


class TestResilienceCommand:
    def test_cable_paired_study(self, capsys):
        assert main(["resilience"]) == 0
        out = capsys.readouterr().out
        assert "Manual vs closed-loop remediation (cable)" in out
        assert "blackout reduction" in out
        assert "availability gain" in out
        assert "Closed-loop pipeline (automated arm)" in out

    def test_recovery_trace_records_reconnect_replay_spans(
            self, tmp_path, capsys):
        trace = tmp_path / "recovery.json"
        assert main(["recovery", "--imperative",
                     "--trace", str(trace)]) == 0
        from repro.obs.trace import read_chrome_trace

        events = read_chrome_trace(trace)["traceEvents"]
        names = {e.get("name") for e in events
                 if e.get("cat") == "recovery"}
        assert {"recovery:reconnect-window", "recovery:replay",
                "recovery:reroute"} <= names


class TestSched:
    def test_paired_run_prints_both_policies(self, capsys):
        assert main(["--seed", "7", "sched", "--duration", "3600",
                     "--rate-scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "QoS caps disabled" in out
        assert "QoS caps enabled" in out
        assert "Per-class outcomes" in out
        assert "fairness" in out

    def test_faults_under_load(self, capsys):
        assert main(["--seed", "7", "sched", "--duration", "1800",
                     "--rate-scale", "0.5", "--faults", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault events" in out

    def test_bad_arguments_are_clean_failures(self, capsys):
        assert main(["sched", "--duration", "-5"]) == 1
        assert "--duration" in capsys.readouterr().err
        assert main(["sched", "--rate-scale", "0"]) == 1
        assert "--rate-scale" in capsys.readouterr().err
        assert main(["sched", "--faults", "-1"]) == 1
        assert "--faults" in capsys.readouterr().err


class TestMeta:
    def test_paired_study_prints_both_arms(self, capsys):
        assert main(["--seed", "7", "meta", "--files", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Small-file metadata tier" in out
        assert "Per-file baseline" in out
        assert "Aggregated tier" in out
        assert "f4-ec" in out
        assert "metadata throughput gain" in out

    def test_no_faults_flag(self, capsys):
        assert main(["meta", "--files", "2000", "--no-faults"]) == 0
        assert "Headline" in capsys.readouterr().out

    def test_trace_records_arm_spans(self, tmp_path, capsys):
        import json
        trace = tmp_path / "meta.json"
        assert main(["meta", "--files", "2000", "--no-faults",
                     "--trace", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        names = {e["name"] for e in events if e.get("cat") == "metatier"}
        assert {"meta:arm:per-file", "meta:arm:aggregated",
                "meta:untar", "meta:training"} <= names

    def test_bad_arguments_are_clean_failures(self, capsys):
        assert main(["meta", "--files", "0"]) == 1
        assert "--files" in capsys.readouterr().err
        assert main(["meta", "--shards", "0"]) == 1
        assert "--shards" in capsys.readouterr().err
        assert main(["meta", "--cache-hit", "1.5"]) == 1
        assert "--cache-hit" in capsys.readouterr().err


class TestErrorPaths:
    def test_report_missing_file_is_clean_failure(self, capsys):
        assert main(["report", "/no/such/trace.json"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("spider-repro: cannot read trace")

    def test_report_corrupt_file_is_clean_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_report_wrong_shape_is_clean_failure(self, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        assert main(["report", str(bad)]) == 1
        assert "Chrome-trace" in capsys.readouterr().err

    def test_report_without_telemetry_is_clean_failure(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}')
        assert main(["report", str(empty)]) == 1
        assert "no telemetry snapshot" in capsys.readouterr().err

    def test_unwritable_trace_path_fails_before_running(self, capsys):
        assert main(["chaos", "--scenario", "cable",
                     "--trace", "/no/such/dir/t.json"]) == 1
        assert "cannot write trace file" in capsys.readouterr().err
