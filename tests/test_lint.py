"""spider-lint behaves: every rule fires on its bad fixture and stays
quiet on the good one, pragmas suppress precisely, the CLI speaks JSON,
and src/repro itself is ratcheted to zero findings.

The fixtures in tests/lint_fixtures/ are never imported — linting is
pure ``ast`` — so they may reference APIs freely.  Each rule has one
``*_bad.py`` (must produce findings for that rule) and one ``*_good.py``
(must be clean under *every* rule: the good fixtures double as style
exemplars for the invariants).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LintUsageError,
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    parse_pragmas,
    resolve_rules,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC = REPO / "src" / "repro"

RULE_IDS = sorted(rule.rule_id for rule in all_rules())


def _fixture(rule_id: str, kind: str) -> Path:
    name = f"{rule_id.replace('-', '_')}_{kind}.py"
    deep = FIXTURES / "deep" / name
    return deep if deep.exists() else FIXTURES / name


class TestRegistry:
    def test_expected_rules_registered(self):
        assert RULE_IDS == ["api-docstring", "cross-iter-order",
                            "determinism", "dirty-state", "epoch-safety",
                            "iter-order", "magic-unit", "obs-guard",
                            "obs-internals", "simtime-purity",
                            "telemetry-taint", "unit-suffix"]

    def test_deep_rules_marked_deep(self):
        deep = {r.rule_id for r in all_rules() if r.deep}
        assert deep == {"cross-iter-order", "dirty-state", "epoch-safety",
                        "telemetry-taint"}

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.summary and rule.invariant
            assert rule.severity in (Severity.ERROR, Severity.WARNING)

    def test_unknown_select_rejected(self):
        with pytest.raises(LintUsageError, match="no-such-rule"):
            resolve_rules(select=["no-such-rule"])

    def test_unknown_ignore_rejected(self):
        with pytest.raises(LintUsageError, match="bogus"):
            resolve_rules(ignore=["bogus"])

    def test_ignore_narrows_the_active_set(self):
        ids = {r.rule_id for r in resolve_rules(ignore=["determinism"])}
        assert "determinism" not in ids
        assert len(ids) == len(RULE_IDS) - 1


class TestFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_is_flagged(self, rule_id):
        findings = lint_paths([str(_fixture(rule_id, "bad"))],
                              select=[rule_id])
        assert findings, f"{rule_id} missed its bad fixture"
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 and f.path.endswith(".py") for f in findings)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean_under_every_rule(self, rule_id):
        assert lint_paths([str(_fixture(rule_id, "good"))], deep=True) == []

    def test_determinism_counts_each_entropy_source(self):
        findings = lint_paths([str(_fixture("determinism", "bad"))],
                              select=["determinism"])
        assert len(findings) == 5  # 3 imports + default_rng() + time.time()

    def test_magic_unit_flags_each_spelling(self):
        findings = lint_paths([str(_fixture("magic-unit", "bad"))],
                              select=["magic-unit"])
        assert len(findings) == 4  # 1 << 20, 10**9, 3600, * 1024

    def test_non_unit_power_of_ten_passes(self):
        assert lint_source("scale = 10 ** 4\n", "x.py") == []

    def test_allowed_numpy_random_names_pass(self):
        src = "from numpy.random import Generator, SeedSequence\n"
        assert lint_source(src, "x.py") == []

    def test_rng_module_is_exempt_by_path(self):
        src = "import numpy as np\nRNG = np.random.default_rng(3)\n"
        assert lint_source(src, "src/repro/sim/rng.py") == []
        assert lint_source(src, "src/repro/ops/qa.py") != []

    def test_reintroducing_default_rng_fails_the_ratchet(self):
        # Undo the iobench/ior.py migration in-memory: the exact
        # pre-migration pattern must come back as a determinism finding.
        path = SRC / "iobench" / "ior.py"
        source = path.read_text(encoding="utf-8")
        migrated = 'RngStreams(self.seed).get("ior.placement")'
        assert migrated in source, "migration marker moved; update this test"
        regressed = "import numpy as np\n" + source.replace(
            migrated, "np.random.default_rng(self.seed)")
        findings = lint_source(regressed, str(path))
        assert any(f.rule_id == "determinism" and "default_rng" in f.message
                   for f in findings)


class TestPragmas:
    def test_trailing_pragma_suppresses_its_own_line(self):
        src = "import time  # spider-lint: ignore[determinism] -- fixture\n"
        assert lint_source(src, "x.py") == []

    def test_own_line_pragma_suppresses_the_next_line(self):
        src = ("# spider-lint: ignore[determinism] -- fixture\n"
               "import time\n")
        assert lint_source(src, "x.py") == []

    def test_pragma_does_not_leak_past_its_line(self):
        src = ("# spider-lint: ignore[determinism] -- fixture\n"
               "import time\n"
               "import random\n")
        assert [f.line for f in lint_source(src, "x.py")] == [3]

    def test_pragma_for_another_rule_does_not_suppress(self):
        src = "import time  # spider-lint: ignore[magic-unit] -- wrong id\n"
        assert len(lint_source(src, "x.py")) == 1

    def test_parse_pragmas_extracts_ids_and_justification(self):
        (p,) = parse_pragmas(
            "x = f()  # spider-lint: ignore[magic-unit, unit-suffix] -- why\n")
        assert p.rule_ids == ("magic-unit", "unit-suffix")
        assert p.reason == "why"
        assert p.applies_to == p.line == 1

    def test_pragma_without_justification_has_empty_reason(self):
        (p,) = parse_pragmas("x = f()  # spider-lint: ignore[magic-unit]\n")
        assert p.reason == ""


class TestCli:
    def test_findings_exit_1_with_rendered_lines(self, capsys):
        assert main(["lint", str(_fixture("iter-order", "bad"))]) == 1
        out = capsys.readouterr().out
        assert re.search(r"iter_order_bad\.py:\d+:\d+: iter-order \[error\] ",
                         out)
        assert "finding(s)" in out

    def test_clean_run_exits_0(self, capsys):
        assert main(["lint", str(_fixture("iter-order", "good"))]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_json_format_schema(self, capsys):
        assert main(["lint", str(_fixture("unit-suffix", "bad")),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload, "bad fixture must produce JSON findings"
        for entry in payload:
            assert set(entry) == {"path", "line", "col", "rule",
                                  "severity", "message"}
            assert entry["severity"] in ("error", "warning")
            assert isinstance(entry["line"], int) and entry["line"] > 0

    def test_json_clean_run_is_empty_list(self, capsys):
        assert main(["lint", str(_fixture("unit-suffix", "good")),
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_select_restricts_rules(self, capsys):
        assert main(["lint", str(_fixture("determinism", "bad")),
                     "--select", "magic-unit", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_nonexistent_path_is_clean_failure(self, capsys):
        assert main(["lint", "does/not/exist.py"]) == 1
        err = capsys.readouterr().err
        assert err.startswith(
            "spider-repro: no such file or directory: does/not/exist.py")

    def test_unknown_rule_id_is_clean_failure(self, capsys):
        assert main(["lint", "--select", "bogus",
                     str(_fixture("iter-order", "good"))]) == 1
        assert "bogus" in capsys.readouterr().err


class TestRatchet:
    def test_src_repro_is_finding_free(self):
        assert lint_paths([str(SRC)]) == []

    def test_src_repro_is_deep_finding_free(self):
        # The whole-program pass is ratcheted exactly like the fast one:
        # epoch-safety, telemetry-taint, dirty-state, and cross-iter-order
        # hold over src/repro with zero unsuppressed findings.
        assert lint_paths([str(SRC)], deep=True) == []

    def test_pragma_budget_and_justifications(self):
        # The escape hatch stays small and every use says why: at most
        # five pragmas across the package, each with a justification.
        pragmas = [(path, p) for path in sorted(SRC.rglob("*.py"))
                   for p in parse_pragmas(path.read_text(encoding="utf-8"))]
        assert len(pragmas) <= 5, (
            f"pragma budget exceeded: {[(str(p), pr.line) for p, pr in pragmas]}")
        for path, pragma in pragmas:
            assert pragma.reason, (
                f"{path}:{pragma.line} pragma lacks a `-- justification`")
