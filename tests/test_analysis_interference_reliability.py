"""Interference-analysis and reliability-simulation tests."""

import numpy as np
import pytest

from repro.analysis.interference import isolated_and_shared, measure_interference
from repro.hardware.raid import RaidGeometry
from repro.ops.reliability import ReliabilitySim, analytic_mttdl_years
from repro.units import GB
from repro.workloads.model import RequestTrace


class TestInterference:
    @pytest.fixture(scope="class")
    def result(self):
        return measure_interference(duration=900.0, seed=5)

    def test_tail_latency_inflates_under_mix(self, result):
        """§II's claim: analytics responsiveness suffers under the mix."""
        assert result.p99_inflation > 5.0
        assert result.mixed_read_p99 > result.alone_read_p99

    def test_median_barely_moves(self, result):
        """Interference is bursty: between checkpoints, latency is normal."""
        assert result.mixed_read_p50 < 2.0 * result.alone_read_p50

    def test_checkpoint_pays_modestly(self, result):
        assert 1.0 <= result.checkpoint_slowdown < 2.0

    def test_rows_render(self, result):
        rows = result.rows()
        assert len(rows) == 9
        assert all(isinstance(v, str) for _k, v in rows)

    def test_deterministic(self):
        a = measure_interference(duration=600.0, seed=9)
        b = measure_interference(duration=600.0, seed=9)
        assert a.mixed_read_p99 == b.mixed_read_p99


class TestIsolatedAndShared:
    """The reusable isolated-vs-shared harness (also the scheduler's
    per-job isolated-baseline adapter)."""

    def _traces(self):
        a = RequestTrace(times=[0.0, 1.0], sizes=[1e6, 1e6],
                         is_write=[False, False], label="a")
        b = RequestTrace(times=[0.5, 1.5], sizes=[2e6, 2e6],
                         is_write=[True, True], label="b")
        return a, b

    def test_alone_results_align_with_inputs(self):
        a, b = self._traces()
        alone, shared, merged = isolated_and_shared(
            [a, b], bandwidth=1e7, n_servers=1)
        assert len(alone) == 2
        assert len(alone[0].latencies) == len(a)
        assert len(alone[1].latencies) == len(b)
        assert len(shared.latencies) == len(merged) == len(a) + len(b)

    def test_shared_is_never_faster(self):
        a, b = self._traces()
        alone, shared, _merged = isolated_and_shared(
            [a, b], bandwidth=1e7, n_servers=1)
        assert shared.mean() >= min(r.mean() for r in alone)

    def test_empty_trace_dropped_from_merge_but_kept_in_alone(self):
        a, _b = self._traces()
        empty = RequestTrace(times=[], sizes=[], is_write=[], label="empty")
        alone, shared, merged = isolated_and_shared(
            [empty, a], bandwidth=1e7)
        assert len(alone[0].latencies) == 0
        # merge_traces drops the empty trace, so the non-empty input
        # takes source id 0 in the shared replay.
        assert np.array_equal(np.unique(merged.source), [0])
        assert shared.percentile(50, source=0) > 0

    def test_rejects_no_traces(self):
        with pytest.raises(ValueError):
            isolated_and_shared([], bandwidth=1e7)

    def test_backs_measure_interference(self):
        """The refactored measure_interference keeps its contract."""
        report = measure_interference(duration=600.0, seed=9)
        assert report.alone_read_p99 > 0
        assert report.burst_drain_alone > 0


class TestReliabilitySim:
    def test_failure_rate_matches_afr(self):
        sim = ReliabilitySim(annual_failure_rate=0.025, seed=2)
        report = sim.run(years=10)
        expected = 0.025 * sim.n_disks
        assert report.failures_per_year == pytest.approx(expected, rel=0.1)

    def test_declustering_shrinks_exposure(self):
        conv = ReliabilitySim(declustered=False, seed=3).run(years=10)
        dec = ReliabilitySim(declustered=True, seed=3).run(years=10)
        assert conv.failures == dec.failures  # same trace
        assert dec.critical_group_hours < conv.critical_group_hours
        assert dec.mean_rebuild_hours == pytest.approx(
            conv.mean_rebuild_hours / RaidGeometry().declustering_speedup)

    def test_degraded_hours_scale_with_rebuild_window(self):
        short = ReliabilitySim(rebuild_hours=6.0, seed=4).run(years=5)
        long = ReliabilitySim(rebuild_hours=48.0, seed=4).run(years=5)
        assert long.degraded_group_hours > 5 * short.degraded_group_hours

    def test_rows_render(self):
        report = ReliabilitySim(seed=5).run(years=2)
        assert len(report.rows()) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilitySim(n_groups=0)
        with pytest.raises(ValueError):
            ReliabilitySim(rebuild_hours=0)
        with pytest.raises(ValueError):
            ReliabilitySim().run(years=0)


class TestAnalyticMttdl:
    def test_faster_rebuild_longer_mttdl(self):
        g = RaidGeometry()
        slow = analytic_mttdl_years(g, n_groups=2016,
                                    annual_failure_rate=0.025,
                                    rebuild_hours=48.0)
        fast = analytic_mttdl_years(g, n_groups=2016,
                                    annual_failure_rate=0.025,
                                    rebuild_hours=12.0)
        assert fast == pytest.approx(16 * slow)  # mu^2 scaling

    def test_more_groups_shorter_mttdl(self):
        g = RaidGeometry()
        one = analytic_mttdl_years(g, n_groups=1, annual_failure_rate=0.02,
                                   rebuild_hours=24.0)
        many = analytic_mttdl_years(g, n_groups=100,
                                    annual_failure_rate=0.02,
                                    rebuild_hours=24.0)
        assert many == pytest.approx(one / 100)

    def test_validation(self):
        g = RaidGeometry()
        with pytest.raises(ValueError):
            analytic_mttdl_years(g, n_groups=1, annual_failure_rate=0.0,
                                 rebuild_hours=1.0)
        with pytest.raises(ValueError):
            analytic_mttdl_years(g, n_groups=0, annual_failure_rate=0.01,
                                 rebuild_hours=1.0)


class TestPlacementLatency:
    def test_spread_protects_tail_latency(self):
        from repro.analysis.interference import measure_placement_latency
        report = measure_placement_latency(n_stations=8, duration=600.0,
                                           seed=9)
        assert report.spread_gain > 5.0
        assert report.spread_p99 < report.concentrated_p99

    def test_rows_render(self):
        from repro.analysis.interference import measure_placement_latency
        report = measure_placement_latency(n_stations=4, duration=300.0,
                                           seed=2)
        assert len(report.rows()) == 4

    def test_validation(self):
        from repro.analysis.interference import measure_placement_latency
        with pytest.raises(ValueError):
            measure_placement_latency(n_stations=1)
