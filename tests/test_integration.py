"""Integration tests: whole-system scenarios crossing many modules.

These run against the full Spider II build (session fixture) or the mini
system, exercising the same paths the benchmark harness uses.
"""

import math

import numpy as np
import pytest

from repro.core.path import PathBuilder, Transfer
from repro.core.spider import build_spider2
from repro.iobench.ior import IorRun
from repro.monitoring.checks import CheckScheduler, CheckState
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.health import EventKind, HealthEvent, LustreHealthChecker
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.tools.libpio import LibPio
from repro.tools.purger import Purger
from repro.units import DAY, GB, MiB, TB
from repro.workloads.s3d import S3DApp


class TestFigure4EndToEnd:
    """The Figure 4 shape on the real system size."""

    def test_linear_then_plateau(self, spider2_session):
        results = {}
        for n in (1008, 4032, 6048, 12096):
            results[n] = IorRun(spider2_session, n_processes=n, ppn=16).run()
        # linear region: per-process bandwidth roughly constant
        assert results[4032].per_process_bw == pytest.approx(
            results[1008].per_process_bw, rel=0.05)
        # plateau: the namespace couplet budget (~320 GB/s pre-upgrade)
        assert results[12096].aggregate_bw == pytest.approx(320 * GB, rel=0.03)
        # knee near 6,000 processes
        assert results[6048].aggregate_bw > 0.90 * results[12096].aggregate_bw


class TestHeroRuns:
    def test_upgrade_story(self):
        """§V-C: 320 GB/s pre-upgrade, ≈510 GB/s after controller upgrade
        (measured post-culling, as in production)."""
        system = build_spider2(seed=42)
        from repro.ops.culling import CullingCampaign
        CullingCampaign(system).run_full_campaign()
        pre = IorRun(system, n_processes=1008, ppn=1, placement="optimal").run()
        system.upgrade_controllers()
        post = IorRun(system, n_processes=1008, ppn=1, placement="optimal").run()
        assert pre.aggregate_bw == pytest.approx(320 * GB, rel=0.03)
        assert post.aggregate_bw == pytest.approx(510 * GB, rel=0.05)


class TestS3DWithLibPio:
    def test_placement_gain_in_noisy_production(self, mini_system):
        """The E5 S3D scenario: a noisy neighbour loads part of the
        namespace; libPIO placement beats default round robin."""
        fs_name = next(iter(mini_system.filesystems))
        fs = mini_system.filesystems[fs_name]
        busy_ssu = fs.osts[0].ssu_index
        busy_osts = [o.index for o in fs.osts if o.ssu_index == busy_ssu]
        # Heavy noise: six unbounded streams per OST of the busy SSU, so
        # the fair share there falls well below an S3D rank's demand.
        noise = [
            Transfer(f"noise{i}", mini_system.clients[60 + i % 60], (ost,),
                     demand=math.inf)
            for i, ost in enumerate(busy_osts * 6)
        ]

        app = S3DApp(n_ranks=16, ranks_per_node=8)

        def run(selector):
            transfers = app.output_transfers(
                mini_system.clients, selector, n_osts=len(fs.osts))
            builder = PathBuilder(mini_system)
            res = builder.solve(noise + transfers)
            rates = builder.transfer_rates(res, noise + transfers)
            return sum(v for k, v in rates.items() if k.startswith("s3d"))

        default_bw = run(S3DApp.round_robin_selector())
        pio = LibPio(mini_system, fs_name)
        pio.observe_external_load({o: 5.0 for o in busy_osts})
        pio_bw = run(pio.selector())
        # The paper reports "up to 24%" for S3D in noisy production.
        assert pio_bw > 1.2 * default_bw


class TestPurgeLifecycle:
    def test_sixty_days_of_scratch(self):
        """Creation pressure + 14-day purging keeps fill below the 70%
        knee; without purging the same workload blows past it."""
        def simulate(purge: bool) -> float:
            osts = []
            from repro.lustre.ost import Ost, OstSpec
            osts = [Ost(i, OstSpec(capacity_bytes=4 * TB)) for i in range(4)]
            from repro.lustre.filesystem import LustreFilesystem
            fs = LustreFilesystem("scratch", osts, default_stripe_count=2)
            fs.mkdir("/u", now=0.0)
            purger = Purger(fs)
            rng = np.random.default_rng(1)
            fills = []
            for day in range(60):
                now = day * DAY
                for k in range(6):
                    fs.create_file(f"/u/d{day}k{k}", now=now,
                                   size=int(rng.uniform(20, 60) * 1e9))
                # a fraction of older files stays hot
                hot = [f.path for f in fs.namespace.files()
                       if rng.random() < 0.05]
                for path in hot:
                    fs.read_file(path, now=now)
                if purge and day % 7 == 0:
                    purger.sweep(now=now)
                fills.append(fs.fill_fraction)
            return max(fills)

        assert simulate(purge=False) > 0.70
        assert simulate(purge=True) < 0.55


class TestMonitoringPipeline:
    def test_fault_to_alert_to_incident(self, mini_system):
        """Inject a controller failure; the DDN poller sees it, the check
        alerts, and the health checker classifies the incident as
        hardware-rooted."""
        engine = Engine()
        db = MetricsDb()
        tool = DdnTool(mini_system, db, poll_interval=60.0)
        tool.attach(engine)
        sched = CheckScheduler(engine)
        couplet = mini_system.ssus[0].couplet

        def couplet_check():
            if not all(c.online for c in couplet.controllers):
                return CheckState.CRITICAL, "controller offline"
            return CheckState.OK, "ok"

        sched.register("couplet0", couplet_check, interval=60.0,
                       confirm_after=1)
        engine.call_at(200.0, lambda: couplet.fail_controller(0))
        engine.run(until=600.0)

        latency = sched.detection_latency("couplet0", fault_time=200.0)
        assert latency is not None and latency <= 120.0

        hc = LustreHealthChecker()
        hc.ingest(HealthEvent(200.0, EventKind.CONTROLLER_FAILOVER,
                              "ssu00.couplet"))
        hc.ingest(HealthEvent(230.0, EventKind.RPC_TIMEOUT, "ssu00"))
        assert hc.incidents()[0].classification == "hardware-rooted"

    def test_degraded_couplet_lowers_delivered_bandwidth(self, mini_system):
        builder = PathBuilder(mini_system)
        fs = list(mini_system.filesystems.values())[0]
        transfers = [
            Transfer(f"w{i}", mini_system.clients[i],
                     (fs.osts[i % len(fs.osts)].index,), demand=math.inf)
            for i in range(32)
        ]
        before = builder.solve(transfers).total
        mini_system.ssus[0].couplet.fail_controller(0)
        after = PathBuilder(mini_system).solve(transfers).total
        assert after < before


class TestCheckpointDesign:
    def test_spider2_meets_checkpoint_goal_approximately(self, spider2_session):
        """E1: 75% of Titan's 600 TB at the delivered block bandwidth
        lands near the 6-minute design goal (7.2 min at 1.04 TB/s)."""
        from repro.workloads.checkpoint import time_to_checkpoint
        delivered = spider2_session.aggregate_bandwidth(fs_level=False)
        t = time_to_checkpoint(600 * TB, 0.75, delivered)
        assert t < 8 * 60.0
