"""Provisioning (Lesson 7) and the 2010 incident replay (Lesson 11)."""

import pytest

from repro.ops.incidents import replay_2010_incident
from repro.ops.provisioning import (
    DEFAULT_SCRIPTS,
    GediCluster,
    GediScript,
    NodeState,
    ServiceDef,
    diskful_mttr,
    diskless_mttr,
)
from repro.sim.engine import Engine
from repro.units import HOUR


class TestGediBoot:
    def test_single_node_reaches_service(self):
        engine = Engine()
        cluster = GediCluster(engine, ["oss01"])
        cluster.boot_node("oss01")
        engine.run()
        node = cluster.nodes["oss01"]
        assert node.state is NodeState.IN_SERVICE
        assert node.services_up == ["openibd", "srp_daemon", "lustre"]

    def test_scripts_run_in_integer_order(self):
        engine = Engine()
        scripts = (
            GediScript(30, "late", ("c.conf",)),
            GediScript(10, "early", ("a.conf",)),
        )
        services = (ServiceDef("svc", ("a.conf", "c.conf")),)
        cluster = GediCluster(engine, ["n1"], scripts=scripts, services=services)
        assert [s.name for s in cluster.scripts] == ["early", "late"]
        cluster.boot_node("n1")
        engine.run()
        assert cluster.nodes["n1"].state is NodeState.IN_SERVICE

    def test_missing_config_producer_rejected_at_build(self):
        """The Lesson 7 invariant: services whose configs nothing builds
        are a provisioning bug caught before any node boots."""
        engine = Engine()
        with pytest.raises(ValueError):
            GediCluster(engine, ["n1"],
                        services=(ServiceDef("svc", ("ghost.conf",)),))

    def test_boot_storm_contends_on_tftp(self):
        engine = Engine()
        few = GediCluster(engine, [f"a{i}" for i in range(4)],
                          tftp_concurrency=16)
        few.boot_all()
        engine.run()
        t_few = max(n.boot_finished_at for n in few.nodes.values())

        engine2 = Engine()
        many = GediCluster(engine2, [f"b{i}" for i in range(64)],
                           tftp_concurrency=4)
        many.boot_all()
        engine2.run()
        t_many = max(n.boot_finished_at for n in many.nodes.values())
        assert t_many > 2 * t_few

    def test_image_update_and_convergence(self):
        engine = Engine()
        cluster = GediCluster(engine, ["n1", "n2"])
        cluster.boot_all()
        engine.run()
        assert cluster.stale_nodes() == []
        cluster.push_image_update()
        assert sorted(cluster.stale_nodes()) == ["n1", "n2"]
        rebooted = cluster.converge()
        engine.run()
        assert sorted(rebooted) == ["n1", "n2"]
        assert cluster.stale_nodes() == []

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            GediCluster(Engine(), ["n", "n"])


class TestMttr:
    def test_diskless_much_faster(self):
        # Lesson 7's payoff: no reinstall, no local RAID rebuild.
        assert diskless_mttr() < 0.2 * diskful_mttr()


class TestIncidentReplay:
    def test_five_enclosure_design_loses_journal(self):
        outcome = replay_2010_incident(5)
        assert outcome.journal_replay_failed
        assert outcome.max_effective_erasures == 3
        # ">1 million files" lost, "95% successful recovery",
        # "more than two weeks".
        assert outcome.files_lost > 1_000_000
        assert outcome.recovery_rate == pytest.approx(0.95, abs=0.001)
        assert outcome.recovery_days > 13.0

    def test_ten_enclosure_design_tolerates(self):
        outcome = replay_2010_incident(10)
        assert outcome.tolerated
        assert outcome.max_effective_erasures == 2
        assert outcome.files_lost == 0

    def test_rebuild_still_running_at_18h(self):
        """The timeline only compounds because the rebuild window under
        production load exceeds 18 hours."""
        from repro.units import MB, TB
        rebuild = 1 * TB / (12 * MB)
        assert rebuild > 18 * HOUR

    def test_other_geometries_rejected(self):
        with pytest.raises(ValueError):
            replay_2010_incident(7)
