"""Culling workflow tests (Lesson 13 / experiment E4)."""

import numpy as np
import pytest

from repro.core.spider import build_spider2
from repro.ops.culling import CullingCampaign, envelope_metrics


class TestEnvelopeMetrics:
    def test_uniform_groups_zero_spread(self):
        m = envelope_metrics(np.full(20, 100.0), groups_per_ssu=10)
        assert m.worst_intra_ssu_spread == 0.0
        assert m.global_spread == 0.0
        assert m.within(0.05)

    def test_intra_ssu_spread(self):
        bw = np.full(20, 100.0)
        bw[3] = 80.0  # one slow group in SSU 0
        m = envelope_metrics(bw, groups_per_ssu=10)
        assert m.worst_intra_ssu_spread == pytest.approx(0.2)
        assert not m.within(0.05)

    def test_global_spread_uses_mean(self):
        bw = np.array([100.0, 100.0, 100.0, 70.0])
        m = envelope_metrics(bw, groups_per_ssu=4)
        assert m.global_spread == pytest.approx(1 - 70.0 / 92.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            envelope_metrics(np.full(7, 1.0), groups_per_ssu=2)


class TestCampaignMini:
    def test_rounds_reduce_variance(self, mini_system):
        campaign = CullingCampaign(mini_system, threshold=0.05)
        report = campaign.run_level(fs_level=False)
        if report.rounds:  # mini system may start within envelope
            assert (report.rounds[-1].metrics_after.global_spread
                    <= report.rounds[0].metrics_before.global_spread)

    def test_replacement_touches_population(self, mini_system):
        campaign = CullingCampaign(mini_system)
        report = campaign.run_full_campaign()
        assert mini_system.population.total_replacements == report.total_replaced

    def test_measurement_has_noise(self, mini_system):
        campaign = CullingCampaign(mini_system, noise_sigma=0.01)
        a = campaign.measure_groups(fs_level=False)
        b = campaign.measure_groups(fs_level=False)
        assert not np.array_equal(a, b)

    def test_validation(self, mini_system):
        with pytest.raises(ValueError):
            CullingCampaign(mini_system, threshold=0.0)
        with pytest.raises(ValueError):
            CullingCampaign(mini_system, bin_fraction=0.0)


class TestCampaignFullScale:
    """The paper-scale numbers on a full 20,160-drive build (slowish)."""

    @pytest.fixture(scope="class")
    def report_and_system(self):
        system = build_spider2(build_clients=False, seed=2014)
        campaign = CullingCampaign(system)
        return campaign.run_full_campaign(), system

    def test_block_level_replacements_near_1500(self, report_and_system):
        report, _ = report_and_system
        assert 1200 <= report.replaced_at("block") <= 1800

    def test_fs_level_replacements_near_500(self, report_and_system):
        report, _ = report_and_system
        assert 300 <= report.replaced_at("fs") <= 700

    def test_multiple_rounds_per_level(self, report_and_system):
        report, _ = report_and_system
        assert sum(1 for r in report.rounds if r.level == "block") >= 2

    def test_final_envelope_within_operational_7_5pct(self, report_and_system):
        """The contractual story: 5% proved prohibitive, 7.5% held."""
        report, _ = report_and_system
        final = report.final_metrics()
        assert final.within(0.075)

    def test_culling_raises_aggregate_bandwidth(self, report_and_system):
        _report, system = report_and_system
        fresh = build_spider2(build_clients=False, seed=2014)
        assert (system.raw_ost_bandwidths().sum()
                > 1.02 * fresh.raw_ost_bandwidths().sum())
