"""obdfilter-survey and acceptance-suite tests."""

import numpy as np
import pytest

from repro.iobench.obdfilter_survey import ObdfilterSurvey, SurveyResult
from repro.iobench.suite import AcceptanceSuite
from repro.units import GB


class TestSurvey:
    def test_runs_all_osts_by_default(self, mini_system, rng):
        results = ObdfilterSurvey(mini_system).run(rng=rng)
        assert len(results) == mini_system.spec.n_osts
        assert [r.ost_index for r in results] == list(range(mini_system.spec.n_osts))

    def test_subset(self, mini_system, rng):
        results = ObdfilterSurvey(mini_system).run([3, 9], rng)
        assert [r.ost_index for r in results] == [3, 9]

    def test_rewrite_below_write(self, mini_system, rng):
        for r in ObdfilterSurvey(mini_system).run([0, 1], rng):
            assert r.rewrite < r.write

    def test_isolated_exposes_variance_concurrent_masks_it(self, rng):
        """The couplet fair share flattens concurrent measurements; the
        per-OST isolated run shows drive-level variance — why culling
        measures OSTs one at a time."""
        from repro.core.spider import build_spider2
        sys2 = build_spider2(build_clients=False, seed=99)
        iso = ObdfilterSurvey(sys2, mode="isolated", noise_sigma=0.0)
        conc = ObdfilterSurvey(sys2, mode="concurrent", noise_sigma=0.0)
        idx = list(range(56))  # one SSU
        iso_bw = np.array([r.write for r in iso.run(idx, rng)])
        conc_bw = np.array([r.write for r in conc.run(idx, rng)])
        assert iso_bw.std() / iso_bw.mean() > 3 * (conc_bw.std() / conc_bw.mean() + 1e-12)

    def test_fs_overhead_near_obdfilter_efficiency(self, mini_system, rng):
        survey = ObdfilterSurvey(mini_system, noise_sigma=0.0)
        results = survey.run(rng=rng)
        from repro.hardware.raid import group_bandwidths
        block = np.concatenate([
            group_bandwidths(ssu.members_matrix,
                             mini_system.population.bandwidths(),
                             8)
            for ssu in mini_system.ssus
        ])
        overhead = survey.fs_overhead(block, results)
        assert 0.08 <= overhead <= 0.20

    def test_fs_overhead_validation(self, mini_system, rng):
        survey = ObdfilterSurvey(mini_system)
        results = survey.run([0], rng)
        with pytest.raises(ValueError):
            survey.fs_overhead(np.array([1.0, 2.0]), results)

    def test_mode_validation(self, mini_system):
        with pytest.raises(ValueError):
            ObdfilterSurvey(mini_system, mode="bogus")


class TestAcceptanceSuite:
    def test_report_structure(self, mini_system):
        suite = AcceptanceSuite(mini_system)
        report = suite.run_ssu(0)
        assert report.block_seq_bw > 0
        assert report.block_random_bw < report.block_seq_bw
        assert report.fs_write_bw > 0
        assert 0.0 < report.fs_overhead < 0.3
        # Per-disk-1MiB random ratio: the healthy-disk band is 0.20-0.25;
        # un-culled slow members lower seq more than random, nudging the
        # fleet-average ratio slightly above it.
        assert 0.15 < report.random_ratio < 0.30

    def test_block_seq_couplet_capped(self, mini_system):
        report = AcceptanceSuite(mini_system).run_ssu(0)
        cap = mini_system.ssus[0].couplet.bw_cap(fs_level=False)
        assert report.block_seq_bw <= cap * 1.001

    def test_sow_target_check(self, mini_system):
        suite = AcceptanceSuite(mini_system)
        report = suite.run_ssu(0)
        ok = suite.check_sow_targets(report,
                                     seq_floor=report.block_seq_bw * 0.9,
                                     random_floor=report.block_random_bw * 0.9)
        assert ok == {"sequential": True, "random": True}
        bad = suite.check_sow_targets(report,
                                      seq_floor=report.block_seq_bw * 2,
                                      random_floor=report.block_random_bw * 0.9)
        assert bad["sequential"] is False

    def test_rows_render(self, mini_system):
        report = AcceptanceSuite(mini_system).run_ssu(0)
        rows = report.rows()
        assert len(rows) == 5
        assert all(isinstance(k, str) and isinstance(v, str) for k, v in rows)
