"""Shared fixtures: a miniature Spider deployment for fast tests, plus the
full paper-calibrated Spider II for integration checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import PlacementSpec
from repro.core.spider import SPIDER2, SpiderSpec, SpiderSystem, build_spider2
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.torus import TorusSpec
from repro.units import GB, MB, TB


def mini_spec(**overrides) -> SpiderSpec:
    """A 4-SSU, 280-disk system that builds in milliseconds."""
    defaults = dict(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4, n_leaves=4),
        n_compute_nodes=128,
    )
    defaults.update(overrides)
    return SpiderSpec(**defaults)


@pytest.fixture
def mini_system() -> SpiderSystem:
    return SpiderSystem(mini_spec(), seed=7)


@pytest.fixture(scope="session")
def spider2_session() -> SpiderSystem:
    """One full Spider II shared by read-only integration tests."""
    return build_spider2(seed=2014)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
