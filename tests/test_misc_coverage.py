"""Cross-cutting edge-case tests for report renderers, row helpers, and
less-travelled branches."""

import math

import numpy as np
import pytest

from repro.core.flow import FlowNetwork
from repro.hardware.disk import Disk, DiskSpec
from repro.iobench.fairlio import DiskTarget, FairLioSweep
from repro.iobench.ior import IorResult
from repro.lustre.mds import OpMix
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine
from repro.tools.ptools import ToolComparison
from repro.units import GB, MiB


class TestRowRenderers:
    def test_fairlio_result_row(self, rng):
        sweep = FairLioSweep(request_sizes=(MiB,), queue_depths=(1,),
                             write_fractions=(1.0,), modes=(True,))
        [result] = sweep.run(DiskTarget(Disk(DiskSpec(), "X")), rng)
        row = result.row()
        assert row[0] == "X"
        assert "MB/s" in row[5]

    def test_ior_result_row(self):
        r = IorResult(n_processes=10, ppn=1, transfer_size=MiB,
                      placement="optimal", stonewall_seconds=30.0,
                      aggregate_bw=10 * GB, per_process_bw=GB)
        row = r.row()
        assert row[0] == 10
        assert "GB/s" in row[3]


class TestFlowEdgeCases:
    def test_component_capacity_overwrite(self):
        net = FlowNetwork()
        net.add_component("c", 1.0)
        net.add_component("c", 5.0)  # what-if override
        net.add_flow("f", ["c"])
        assert net.solve().rate_of("f") == pytest.approx(5.0)

    def test_counts(self):
        net = FlowNetwork()
        net.add_component("a", 1.0)
        net.add_component("b", 1.0)
        net.add_flow("f", ["a", "b"])
        assert net.n_components == 2
        assert net.n_flows == 1

    def test_no_flows_solves_empty(self):
        net = FlowNetwork()
        net.add_component("a", 1.0)
        result = net.solve()
        assert result.total == 0.0
        assert result.component_load["a"] == 0.0

    def test_mixed_finite_infinite_demands_on_one_component(self):
        net = FlowNetwork()
        net.add_component("c", 10.0)
        net.add_flow("small", ["c"], demand=1.0)
        net.add_flow("big", ["c"])
        res = net.solve()
        assert res.rate_of("small") == pytest.approx(1.0)
        assert res.rate_of("big") == pytest.approx(9.0)


class TestEngineEdgeCases:
    def test_timeout_value_none(self):
        engine = Engine()
        ev = engine.timeout(1.0)
        engine.run()
        assert ev.triggered and ev.value is None

    def test_process_yield_none_resumes_same_time(self):
        engine = Engine()
        times = []

        def proc():
            times.append(engine.now)
            yield None
            times.append(engine.now)

        engine.process(proc())
        engine.run()
        assert times == [0.0, 0.0]

    def test_events_processed_counter(self):
        engine = Engine()
        for t in range(5):
            engine.call_at(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestOpMixEdge:
    def test_total_ops(self):
        mix = OpMix(creates=1, stats=2, unlinks=3, mkdirs=4,
                    readdir_entries=5)
        assert mix.total_ops == 15

    def test_scaled_preserves_stripe_count(self):
        mix = OpMix(stats=10, mean_stripe_count=8.0)
        assert mix.scaled(0.5).mean_stripe_count == 8.0


class TestMetricsDbEdge:
    def test_metrics_listing(self):
        db = MetricsDb()
        db.insert("a", "x", 0.0, 1.0)
        db.insert("b", "x", 0.0, 1.0)
        assert db.metrics() == ["a", "b"]
        assert db.sources("a") == ["x"]

    def test_rate_zero_window(self):
        db = MetricsDb()
        db.insert("m", "s", 5.0, 1.0)
        db.insert("m", "s", 5.0, 2.0)  # same timestamp allowed (>=)
        assert db.rate("m", "s") == 0.0

    def test_range_bounds_inclusive(self):
        db = MetricsDb()
        for t in (1.0, 2.0, 3.0):
            db.insert("m", "s", t, t)
        points = db.range("m", "s", 2.0, 2.0)
        assert len(points) == 1 and points[0].time == 2.0


class TestToolComparisonEdge:
    def test_infinite_speedup_guard(self):
        from repro.tools.ptools import ToolRun
        serial = ToolRun("cp", 1, 1, 1.0)
        instant = ToolRun("dcp", 1, 1, 0.0)
        assert ToolComparison(serial, instant).speedup == math.inf
        assert instant.throughput == 0.0
