"""libPIO placement tests: balance, congestion avoidance, the S3D hook."""

import math

import numpy as np
import pytest

from repro.core.path import PathBuilder, Transfer
from repro.tools.libpio import LibPio
from repro.units import GB


class TestSuggest:
    def test_spreads_across_osts(self, mini_system):
        pio = LibPio(mini_system)
        picks = [pio.suggest(1)[0] for _ in range(14)]
        assert len(set(picks)) == 14  # no repeats until the space fills

    def test_avoids_externally_loaded_components(self, mini_system):
        pio = LibPio(mini_system)
        fs = pio.fs
        # Heavy background load on the first SSU's OSTs.
        busy_ssu = fs.osts[0].ssu_index
        busy = {o.index: 10.0 for o in fs.osts if o.ssu_index == busy_ssu}
        pio.observe_external_load(busy)
        picks = [pio.suggest(1)[0] for _ in range(7)]
        for ost_index in picks:
            assert mini_system.osts[ost_index].ssu_index != busy_ssu

    def test_multi_stripe_prefers_distinct_osses(self, mini_system):
        pio = LibPio(mini_system)
        osts = pio.suggest(2)
        oss_names = {mini_system.osts[i].oss_name for i in osts}
        assert len(oss_names) == 2

    def test_avoids_full_osts(self, mini_system):
        pio = LibPio(mini_system)
        target = pio.fs.osts[0]
        target.allocate(int(0.95 * target.spec.capacity_bytes))
        picks = [pio.suggest(1)[0] for _ in range(7)]
        assert target.index not in picks

    def test_session_reset(self, mini_system):
        pio = LibPio(mini_system)
        first = pio.suggest(1)
        pio.reset_session()
        assert pio.suggest(1) == first

    def test_observe_negative_load_rejected(self, mini_system):
        pio = LibPio(mini_system)
        with pytest.raises(ValueError):
            pio.observe_external_load({0: -1.0})

    def test_stripe_count_validation(self, mini_system):
        with pytest.raises(ValueError):
            LibPio(mini_system).suggest(0)

    def test_selector_hook_signature(self, mini_system):
        pio = LibPio(mini_system)
        select = pio.selector(stripe_count=1)
        osts = select(0, mini_system.spec.n_osts)
        assert len(osts) == 1


class TestPlacementGain:
    def test_libpio_beats_naive_under_congestion(self, mini_system):
        """The E5 mechanism in miniature: background load saturates part of
        the machine; naive round robin keeps landing streams there, libPIO
        steers around it — delivered job bandwidth improves materially."""
        fs_name = next(iter(mini_system.filesystems))
        fs = mini_system.filesystems[fs_name]
        busy_ssu = fs.osts[0].ssu_index
        busy_osts = [o.index for o in fs.osts if o.ssu_index == busy_ssu]

        def background():
            return [
                Transfer(f"bg{i}", mini_system.clients[40 + i], (ost,),
                         demand=math.inf)
                for i, ost in enumerate(busy_osts * 3)
            ]

        job_clients = mini_system.clients[:8]

        def run_job(ost_choices):
            transfers = background() + [
                Transfer(f"job{i}", c, (ost_choices[i],), demand=0.8 * GB)
                for i, c in enumerate(job_clients)
            ]
            builder = PathBuilder(mini_system)
            res = builder.solve(transfers)
            rates = builder.transfer_rates(res, transfers)
            return sum(v for k, v in rates.items() if k.startswith("job"))

        # Naive: round robin over all namespace OSTs (half land on the
        # congested SSU in a 2-SSU namespace).
        ns_osts = [o.index for o in fs.osts]
        naive = [ns_osts[i % len(ns_osts)] for i in range(8)]
        naive_bw = run_job(naive)

        pio = LibPio(mini_system, fs_name)
        pio.observe_external_load({ost: 3.0 for ost in busy_osts})
        balanced = [pio.suggest(1)[0] for _ in range(8)]
        pio_bw = run_job(balanced)

        assert pio_bw > 1.4 * naive_bw  # ">70%" is the paper's at-scale figure
