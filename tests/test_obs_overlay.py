"""In-band monitoring overlay: tree packing, scraping, windowed rollups,
alerting, and the non-omniscient observed detector."""

from __future__ import annotations

import itertools

import pytest

from repro.core.spider import SpiderSystem
from repro.faults import FaultCampaign
from repro.faults.events import FaultClass, PlannedFault
from repro.faults.plan import cable_failure_scenario
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.overlay import (
    AggregationTree,
    AlertEngine,
    BurnRateRule,
    CollectorSink,
    MonitoringOverlay,
    OverlayConfig,
    Probe,
    Sample,
    Scraper,
    ThresholdRule,
    probes_for_system,
    run_mttd_study,
    scheduler_probes,
)
from repro.obs.report import render_layer_report
from repro.resilience.detector import DetectionModel
from repro.resilience.playbooks import RemediationPolicy
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.units import HOUR
from tests.conftest import mini_spec


def fresh_system() -> SpiderSystem:
    """Campaigns mutate the system in place — one per campaign."""
    return SpiderSystem(mini_spec(), seed=7)


class TestOverlayConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OverlayConfig(scrape_interval=0.0)
        with pytest.raises(ValueError):
            OverlayConfig(fan_in=1)
        with pytest.raises(ValueError):
            OverlayConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            OverlayConfig(hop_latency=-1.0)
        with pytest.raises(ValueError):
            OverlayConfig(staleness_limit=0.0)

    def test_staleness_default_is_two_sweeps(self):
        assert OverlayConfig(scrape_interval=20.0) \
            .effective_staleness_limit == pytest.approx(40.0)
        assert OverlayConfig(staleness_limit=7.0) \
            .effective_staleness_limit == pytest.approx(7.0)

    def test_tightened_scales_cadence_and_fan_in(self):
        base = OverlayConfig(scrape_interval=30.0, fan_in=8, seed=3)
        tight = base.tightened(cadence_factor=3.0, fan_in_factor=2)
        assert tight.scrape_interval == pytest.approx(10.0)
        assert tight.fan_in == 16
        assert tight.seed == base.seed
        with pytest.raises(ValueError):
            base.tightened(cadence_factor=1.0)


class TestAggregationTree:
    def test_agents_reach_root(self):
        tree = AggregationTree(
            [("a", 0), ("b", 0), ("c", 1)], n_leaves=2, n_cores=2, fan_in=4)
        for agent in tree.agents:
            assert tree.depth_of(agent) >= 2  # agent -> leaf -> ... -> root
        assert tree.depth_of("collector") == 0

    def test_fan_in_bound_holds_everywhere(self):
        agents = [(f"a{i:02d}", 0) for i in range(20)]
        tree = AggregationTree(agents, n_leaves=1, n_cores=1, fan_in=3)
        for node in tree.parent:
            assert len(tree.children_of(node)) <= 3

    def test_wider_fan_in_strictly_shallows_the_tree(self):
        agents = [(f"a{i:02d}", 0) for i in range(20)]
        depths = [
            AggregationTree(agents, n_leaves=1, n_cores=1,
                            fan_in=f).max_depth
            for f in (2, 4, 16)
        ]
        assert depths[0] > depths[1] > depths[2]

    def test_relays_only_when_needed(self):
        small = AggregationTree([("a", 0), ("b", 0)],
                                n_leaves=1, n_cores=1, fan_in=8)
        assert small.n_relays == 0
        packed = AggregationTree([(f"a{i}", 0) for i in range(9)],
                                 n_leaves=1, n_cores=1, fan_in=2)
        assert packed.n_relays > 0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            AggregationTree([], n_leaves=1, n_cores=1, fan_in=2)
        with pytest.raises(ValueError):
            AggregationTree([("a", 5)], n_leaves=2, n_cores=1, fan_in=2)
        with pytest.raises(ValueError):
            AggregationTree([("a", 0), ("a", 0)],
                            n_leaves=1, n_cores=1, fan_in=2)
        with pytest.raises(ValueError):
            AggregationTree([("a", 0)], n_leaves=1, n_cores=1, fan_in=1)


class TestScraper:
    def test_probe_requires_mon_prefix(self):
        with pytest.raises(ValueError):
            Probe("cable_ok", "x", lambda: 1.0)

    def test_sweep_reads_live_ground_truth(self, mini_system):
        scrapers = probes_for_system(mini_system)
        ssu0 = next(s for s in scrapers if s.name == "ssu00")
        healthy = {(s.metric, s.source): s.value for s in ssu0.sweep(0.0)}
        oss = mini_system.osses[0].name
        assert healthy[("mon.cable_ok", oss)] == 1.0
        assert healthy[("mon.couplet_bw_frac", "ssu00")] \
            == pytest.approx(1.0)
        mini_system.fabric.fail_cable(oss)
        mini_system.ssus[0].couplet.fail_controller(0)
        hurt = {(s.metric, s.source): s.value for s in ssu0.sweep(30.0)}
        assert hurt[("mon.cable_ok", oss)] == 0.0
        assert hurt[("mon.couplet_bw_frac", "ssu00")] \
            == pytest.approx(0.5)

    def test_inventory_covers_every_layer(self, mini_system):
        scrapers = probes_for_system(mini_system)
        names = [s.name for s in scrapers]
        assert names == sorted(names)
        assert {"ssu00", "ssu01", "ssu02", "ssu03"} <= set(names)
        assert "rtr000" in names and "flowstats" in names
        assert any(n.endswith("-mds") for n in names)

    def test_mirror_rides_only_with_telemetry_enabled(self):
        agent = Scraper("flowstats", 0, [], mirror_telemetry=True)
        assert agent.sweep(0.0) == ()
        telemetry = Telemetry(enabled=True)
        telemetry.gauge("flow.layer.load", "oss").set(5.0)
        telemetry.gauge("flow.layer.max_util", "oss").set(0.4)  # not mirrored
        with use_telemetry(telemetry):
            samples = agent.sweep(10.0)
        assert samples == (Sample("flow.layer.load", "oss", 5.0, 10.0),)


def _batch(metric, source, value, at):
    return (Sample(metric, source, value, at),)


class TestCollectorSink:
    def test_ingest_order_independence(self):
        batches = [
            _batch("mon.x", "a", 1.0, 10.0),
            _batch("mon.x", "a", 3.0, 40.0),
            _batch("mon.x", "b", 2.0, 10.0),
            _batch("mon.y", "a", 7.0, 40.0),
        ]
        results = []
        for perm in itertools.permutations(batches):
            sink = CollectorSink(rollup_interval=60.0, staleness_limit=60.0)
            for batch in perm:
                sink.deliver(batch, 50.0)
            results.append(tuple(sink.close_window(60.0)))
        assert len(set(results)) == 1

    def test_rollup_uses_freshest_value_per_source(self):
        sink = CollectorSink(rollup_interval=60.0, staleness_limit=120.0)
        sink.deliver(_batch("mon.x", "a", 5.0, 10.0), 11.0)
        sink.deliver(_batch("mon.x", "a", 9.0, 40.0), 41.0)
        sink.deliver(_batch("mon.x", "b", 1.0, 40.0), 41.0)
        (rollup,) = sink.close_window(60.0)
        assert rollup.n_sources == 2 and rollup.n_samples == 3
        assert rollup.mean == pytest.approx(5.0)  # (9 + 1) / 2
        assert rollup.max == pytest.approx(9.0)
        assert rollup.p99 == pytest.approx(9.0)

    def test_staleness_tagging(self):
        sink = CollectorSink(rollup_interval=60.0, staleness_limit=30.0)
        sink.deliver(_batch("mon.x", "a", 1.0, 5.0), 6.0)    # stale by 60
        sink.deliver(_batch("mon.x", "b", 1.0, 55.0), 56.0)  # fresh
        (rollup,) = sink.close_window(60.0)
        assert rollup.n_stale == 1

    def test_counter_rate_across_windows_with_reset(self):
        sink = CollectorSink(rollup_interval=60.0, staleness_limit=120.0,
                             counter_metrics=frozenset({"mon.c"}))
        sink.deliver(_batch("mon.c", "a", 100.0, 50.0), 55.0)
        sink.close_window(60.0)
        sink.deliver(_batch("mon.c", "a", 700.0, 110.0), 115.0)
        (second,) = sink.close_window(120.0)
        assert second.rate == pytest.approx(10.0)  # (700-100)/60
        # A replaced cable resets its error counter: no negative rate,
        # the measurement window restarts.
        sink.deliver(_batch("mon.c", "a", 0.0, 170.0), 175.0)
        (third,) = sink.close_window(180.0)
        assert third.rate == 0.0

    def test_mirrored_metrics_never_enter_rollups(self):
        sink = CollectorSink(rollup_interval=60.0, staleness_limit=60.0)
        sink.deliver(_batch("flow.layer.load", "oss", 9.9, 10.0), 11.0)
        sink.deliver(_batch("mon.x", "a", 1.0, 10.0), 11.0)
        rollups = sink.close_window(60.0)
        assert [r.metric for r in rollups] == ["mon.x"]
        assert ("flow.layer.load", "oss") in sink._mirror


class TestAlertEngine:
    def _window(self, engine, now, value):
        view = {("mon.cable_ok", "oss1"): (value, now - 1.0)}
        return engine.observe_window(now, view, [])

    def test_threshold_latches_per_excursion(self):
        engine = AlertEngine([ThresholdRule("cable-down", "mon.cable_ok",
                                            below=0.5)])
        assert len(self._window(engine, 60.0, 0.0)) == 1
        assert len(self._window(engine, 120.0, 0.0)) == 0  # latched
        assert len(self._window(engine, 180.0, 1.0)) == 0  # recovers
        assert len(self._window(engine, 240.0, 0.0)) == 1  # re-fires

    def test_for_windows_debounce(self):
        engine = AlertEngine([ThresholdRule("slow", "mon.cable_ok",
                                            below=0.5, for_windows=2)])
        assert self._window(engine, 60.0, 0.0) == []
        assert len(self._window(engine, 120.0, 0.0)) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdRule("bad", "mon.x")
        with pytest.raises(ValueError):
            ThresholdRule("bad", "mon.x", below=1.0, above=2.0)
        with pytest.raises(ValueError):
            BurnRateRule("bad", "mon.x", threshold_rate=1.0,
                         short_windows=5, long_windows=5)

    def test_burn_rate_needs_history_and_factor(self):
        from repro.obs.overlay.collector import Rollup

        def rollup(end, rate):
            return Rollup(window_end=end, metric="mon.c", n_sources=1,
                          n_samples=1, n_stale=0, rate=rate, mean=0.0,
                          max=0.0, p99=0.0)

        engine = AlertEngine(burn_rate_rules=[BurnRateRule(
            "burn", "mon.c", threshold_rate=1.0,
            short_windows=1, long_windows=5, factor=4.0)])
        fired = []
        for i, rate in enumerate([0.0, 0.0, 0.0, 0.0, 100.0]):
            fired = engine.observe_window(60.0 * (i + 1), {},
                                          [rollup(60.0 * (i + 1), rate)])
        assert len(fired) == 1 and fired[0].rule == "burn"


class TestMonitoringOverlay:
    def test_end_to_end_rollups_on_idle_system(self):
        overlay = MonitoringOverlay(fresh_system(), OverlayConfig(seed=3))
        engine = Engine()
        overlay.attach(engine)
        engine.run(until=HOUR)
        outcome = overlay.outcome()
        assert outcome.n_windows == 60
        assert outcome.n_batches == 120 * len(overlay.scrapers)
        assert outcome.n_lost > 0  # seeded loss actually bites
        assert outcome.alerts == ()
        latest = {r.metric: r for r in overlay.collector.latest_rollups()}
        assert latest["mon.cable_ok"].mean == pytest.approx(1.0)
        assert latest["mon.routers_online_frac"].n_sources == 6

    def test_rollups_bit_identical_with_telemetry_on_or_off(self):
        def run(telemetry):
            overlay = MonitoringOverlay(fresh_system(), OverlayConfig(seed=3))
            engine = Engine()
            overlay.attach(engine)
            with use_telemetry(telemetry):
                engine.run(until=HOUR)
            return overlay.outcome()

        assert run(Telemetry(enabled=False)) == run(Telemetry(enabled=True))

    def test_double_attach_rejected(self):
        overlay = MonitoringOverlay(fresh_system())
        overlay.attach(Engine())
        with pytest.raises(RuntimeError):
            overlay.attach(Engine())

    def test_overlay_metricsdb_is_retention_capped(self):
        overlay = MonitoringOverlay(fresh_system())
        assert overlay.db.max_points is not None
        assert overlay.db.compaction_window is not None

    def test_alerts_fire_from_the_overlay_view(self):
        system = fresh_system()
        overlay = MonitoringOverlay(system, OverlayConfig(seed=3))
        engine = Engine()
        overlay.attach(engine)
        oss = system.osses[0].name
        engine.call_at(200.0, lambda: system.fabric.fail_cable(oss))
        engine.run(until=600.0)
        alerts = [a for a in overlay.alert_engine.alerts
                  if a.rule == "cable-down"]
        assert [a.source for a in alerts] == [oss]
        # Fault at 200: next sweep 210, delivered +depth hops, alerted at
        # the following window close — never before 240.
        assert alerts[0].time >= 240.0


class TestObservedDetector:
    def test_expected_delay_closed_form(self):
        system = fresh_system()
        config = OverlayConfig(scrape_interval=30.0, hop_latency=1.0,
                               loss_probability=0.0, seed=3)
        overlay = MonitoringOverlay(system, config)
        model = DetectionModel(debounce=10.0)
        detector = overlay.detector(model)
        oss = system.osses[0].name
        agent = detector.agent_for(oss)
        assert agent == "ssu00"
        depth = overlay.tree.depth_of(agent)
        assert detector.expected_delay(oss, 600.0) \
            == pytest.approx(30.0 + depth * 1.0 + 10.0)
        # Mid-grid onset waits only to the next tick.
        assert detector.expected_delay(oss, 615.0) \
            == pytest.approx(15.0 + depth * 1.0 + 10.0)
        # Loss-free delay_for matches the closed form exactly.
        fault = PlannedFault(600.0, FaultClass.CABLE_FAIL, oss)
        assert detector.delay_for(fault, 600.0) \
            == pytest.approx(detector.expected_delay(oss, 600.0))

    def test_host_resolution_fallbacks(self):
        system = fresh_system()
        overlay = MonitoringOverlay(system, OverlayConfig(seed=3))
        detector = overlay.detector(DetectionModel())
        assert detector.agent_for("ssu03.enc2") == "ssu03"
        assert detector.agent_for("rtr005.3") == "rtr005"
        assert detector.agent_for(system.osses[-1].name) == "ssu03"
        unknown = detector.agent_for("no-such-host")
        assert unknown in set(overlay.tree.agents)
        assert overlay.tree.depth_of(unknown) == overlay.tree.max_depth

    def test_tighter_cadence_strictly_reduces_delay(self):
        system = fresh_system()
        model = DetectionModel(debounce=10.0)
        delays = []
        for interval in (30.0, 10.0):
            config = OverlayConfig(scrape_interval=interval,
                                   loss_probability=0.0, seed=3)
            detector = MonitoringOverlay(system, config).detector(model)
            # The §IV-A cable-scenario onsets: both sit on the 30 s grid,
            # the worst case for the slow cadence.
            delays.append(sum(
                detector.expected_delay(system.osses[0].name, onset)
                for onset in (600.0, HOUR)))
        assert delays[1] < delays[0]

    def test_wider_fan_in_strictly_reduces_delay(self, spider2_session):
        model = DetectionModel(debounce=10.0)
        system = spider2_session
        delays = []
        for fan_in in (2, 8):
            config = OverlayConfig(fan_in=fan_in, loss_probability=0.0,
                                   seed=3)
            detector = MonitoringOverlay(system, config).detector(model)
            delays.append(detector.expected_delay(
                system.osses[0].name, 600.0))
        assert delays[1] < delays[0]

    def test_losses_add_whole_scrape_intervals(self):
        system = fresh_system()
        config = OverlayConfig(scrape_interval=30.0, loss_probability=0.9,
                               seed=3)
        overlay = MonitoringOverlay(system, config)
        detector = overlay.detector(DetectionModel(debounce=10.0))
        oss = system.osses[0].name
        fault = PlannedFault(600.0, FaultClass.CABLE_FAIL, oss)
        extra = detector.delay_for(fault, 600.0) \
            - detector.expected_delay(oss, 600.0)
        assert extra > 0
        assert extra / 30.0 == pytest.approx(round(extra / 30.0))


def run_cable_with_overlay(seed=11, telemetry=None):
    system = fresh_system()
    plan = cable_failure_scenario(system)
    monitor = MonitoringOverlay(system, OverlayConfig(seed=3))
    policy = RemediationPolicy(imperative=True, hp_journaling=True, seed=seed)
    campaign = FaultCampaign(system, plan, remediation=policy,
                             monitor=monitor)
    if telemetry is None:
        return campaign.run()
    with use_telemetry(telemetry):
        return campaign.run()


class TestCampaignIntegration:
    def test_overlay_backed_remediation_end_to_end(self):
        result = run_cable_with_overlay()
        outcome = result.remediation
        assert outcome is not None and outcome.n_faults == 2
        assert all(r.completed for r in outcome.records)
        assert result.overlay is not None
        assert result.overlay.n_windows > 0
        assert any(a.rule == "cable-down" for a in result.overlay.alerts)

    def test_same_seed_campaigns_compare_equal(self):
        assert run_cable_with_overlay() == run_cable_with_overlay()

    def test_campaign_bit_identical_with_telemetry_on_or_off(self):
        off = run_cable_with_overlay()
        on = run_cable_with_overlay(telemetry=Telemetry(enabled=True))
        assert off == on

    def test_observed_mttd_matches_pipeline_physics(self):
        # With loss ruled out, each fault's detect latency must equal the
        # closed form: grid wait + tree hops + debounce.
        system = fresh_system()
        plan = cable_failure_scenario(system)
        config = OverlayConfig(loss_probability=0.0, seed=3)
        monitor = MonitoringOverlay(system, config)
        policy = RemediationPolicy(seed=11)
        detector = monitor.detector(policy.detection)
        expected = {
            fault.label: detector.expected_delay(str(fault.target),
                                                 fault.time)
            for fault in plan
        }
        result = FaultCampaign(system, plan, remediation=policy,
                               monitor=monitor).run()
        for record in result.remediation.records:
            assert record.detect_seconds \
                == pytest.approx(expected[record.fault_label])


class TestMttdStudy:
    def test_tightening_strictly_reduces_mttd(self):
        result = run_mttd_study(
            fresh_system, cable_failure_scenario, seed=11,
            base=OverlayConfig(loss_probability=0.0, seed=11))
        assert result.tight.mean_mttd_seconds \
            < result.observed.mean_mttd_seconds
        assert result.tightening_gain_seconds > 0
        # The overlay adds tree lag the analytic model does not know.
        assert result.observed.mean_mttd_seconds \
            > result.analytic.mean_mttd_seconds
        assert result.analytic.overlay is None
        assert result.observed.overlay is not None
        assert result.observed.tree_depth > result.tight.tree_depth \
            or result.observed.scrape_interval \
            > result.tight.scrape_interval


class TestSchedulerProbes:
    def test_ingest_capacities_surface(self, mini_system):
        from repro.sched import FacilityScheduler, JobSpec, Phase
        from repro.sched.jobs import PlatformClass

        job = JobSpec("j0", PlatformClass.SIMULATION, 0.0,
                      (Phase.compute(1.0),))
        scheduler = FacilityScheduler(mini_system, [job], seed=1)
        caps = scheduler.ingest_capacities()
        assert [cls for cls, _ in caps] == sorted(cls for cls, _ in caps)
        assert all(cap >= 0.0 for _, cap in caps)
        probes = scheduler_probes(scheduler)
        values = {p.source: p.read() for p in probes}
        assert values == dict(caps)
        # Dropping a router shrinks the simulation-class cap in the
        # overlay's view exactly as in the arbiter's.
        before = values["simulation"]
        router = mini_system.routers[0].name
        mini_system.lnet.set_router_online(router, False)
        scheduler._backbone_dirty = True
        after = {p.source: p.read() for p in probes}["simulation"]
        assert after < before


class TestReportMonitoringLag:
    def _snapshot(self, with_overlay):
        gauges = [
            {"name": "flow.layer.load", "source": "oss", "value": 10.0},
            {"name": "flow.layer.capacity", "source": "oss", "value": 20.0},
            {"name": "flow.layer.max_util", "source": "oss", "value": 0.5},
        ]
        if with_overlay:
            gauges += [
                {"name": "overlay.view.load", "source": "oss", "value": 6.0},
                {"name": "overlay.view.age_seconds", "source": "oss",
                 "value": 30.0},
            ]
        return {"gauges": gauges, "counters": [], "histograms": []}

    def test_lag_column_appears_with_overlay_view(self):
        report = render_layer_report(self._snapshot(True))
        assert "monitoring lag" in report
        assert "@30s" in report

    def test_lag_column_absent_without_overlay(self):
        report = render_layer_report(self._snapshot(False))
        assert "monitoring lag" not in report
