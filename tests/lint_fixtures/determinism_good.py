"""Good: entropy flows through seeded substreams and Generator params."""
import numpy as np

from repro.sim.rng import RngStreams


def jitter(rng: np.random.Generator) -> float:
    """One draw from the caller's stream."""
    return float(rng.random())


def sample(seed: int) -> float:
    """A named substream pins the draw to the seed."""
    return float(RngStreams(seed).get("fixture.sample").random())
