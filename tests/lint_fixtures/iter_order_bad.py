"""Bad: hash-ordered and filesystem-ordered iteration."""
import os


def names(path):
    out = []
    for name in os.listdir(path):
        out.append(name)
    return out


def tags():
    return [t for t in {"a", "b", "c"}]
