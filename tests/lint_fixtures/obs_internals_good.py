"""Good: registry state flows through the public API; private names on
non-telemetry objects stay allowed."""
from repro.obs.instruments import Telemetry, use_telemetry


def snapshot(run):
    """Scoped enablement + public read API; private state untouched."""
    with use_telemetry(Telemetry(enabled=True)) as telemetry:
        run()
        return telemetry.snapshot()


class Recorder:
    """A non-telemetry object may keep private state of its own."""

    def __init__(self) -> None:
        self._spans = []

    def note(self, span) -> None:
        """``self`` is not a telemetry receiver; ``self._spans`` is fine."""
        self._spans.append(span)
