"""Bad: every hidden-entropy pattern the determinism rule bans."""
import random
import time

import numpy as np
from numpy.random import default_rng


def jitter() -> float:
    rng = np.random.default_rng()
    return rng.random() + random.random() + time.time()
