"""Good: quantities cross APIs in bytes and seconds."""
from dataclasses import dataclass


@dataclass
class Probe:
    """A link probe; quantities in base units."""

    timeout: float = 5e-3  # seconds
    link_bw: float = 5e9  # bytes/s


def transfer(size: int, latency: float) -> float:
    """Bytes and seconds in, a rate in bytes/s out."""
    return size / latency
