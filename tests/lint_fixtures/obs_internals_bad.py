"""Bad: reaching into registry internals from outside repro/obs."""
from repro.obs.instruments import get_telemetry


def reset() -> None:
    telemetry = get_telemetry()
    telemetry._counters.clear()
    telemetry.enabled = False
