"""Bad: exported names without docstrings."""

__all__ = ["Budget", "spend"]


class Budget:
    limit: float = 0.0


def spend(amount: float) -> float:
    return amount


def _helper() -> None:
    pass
