"""Good: processes stay pure; @contextmanager resource scopes may do I/O."""
from contextlib import contextmanager


def writer_process(engine, log):
    """A pure DES process: effects go to an in-memory log."""
    log.append("start")
    yield engine.timeout(1.0)
    log.append("done")


@contextmanager
def report_file(path):
    """A resource scope (not a process): host I/O is its whole point."""
    fh = open(path, "w")
    try:
        yield fh
    finally:
        fh.close()
