"""Bad: telemetry reads steer RNG draws and simulation state."""
from repro.core.flow import FlowNetwork
from repro.monitoring.metricsdb import MetricsDb
from repro.obs.instruments import get_telemetry


class AdaptiveController:
    """Feeds observed metrics back into simulation decisions."""

    def __init__(self, rng) -> None:
        """Hold an RNG, a metrics store, and the network."""
        self._rng = rng
        self._db = MetricsDb()
        self._net = FlowNetwork()

    def jitter(self) -> float:
        """Scale an RNG draw by an observed counter value."""
        observed = get_telemetry().counter("io.bytes").value
        return self._rng.normal(observed, 1.0)

    def throttle(self) -> None:
        """Write an observed rate back into the network."""
        rate = self._db.rate("oss1", "bw")
        self._net.set_capacity("link", rate)
