"""Bad: event callbacks mutate and solve the network without an Epoch."""
from repro.core.flow import FlowNetwork


class TickExecutor:
    """Per-tick executor that bypasses Epoch batching."""

    def __init__(self, engine) -> None:
        """Wire the per-tick callbacks onto the engine."""
        self._engine = engine
        self._net = FlowNetwork()
        self._engine.every(1.0, self._on_tick)
        self._engine.call_after(2.0, self._on_fault)

    def _on_tick(self) -> None:
        """Mutates the network with no Epoch on the path."""
        self._net.set_capacity("link", 5.0)

    def _on_fault(self) -> None:
        """Solves directly instead of routing through Epoch.request."""
        self._net.solve()
