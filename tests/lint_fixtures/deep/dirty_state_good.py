"""Good: every public mutator marks the dirty set."""


class SolverState:
    """Caches a solution over capacity state."""

    def __init__(self) -> None:
        """Start clean."""
        self._dirty = set()
        self._caps = {}
        self._result = None

    def set_capacity(self, name: str, cap: float) -> None:
        """Record a capacity and mark it dirty."""
        self._caps[name] = cap
        self._dirty.add(name)

    def set_weight(self, name: str, weight: float) -> None:
        """Record a weight and mark it dirty."""
        self._caps[name] = weight
        self._dirty.add(name)

    def solve(self) -> dict:
        """Serve a result after consuming the dirty set."""
        self._dirty.clear()
        self._result = dict(self._caps)
        return self._result
