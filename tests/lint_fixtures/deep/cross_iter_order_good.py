"""Good: boundary-crossing sets are sorted before order-bearing loops."""
from repro.core.flow import FlowNetwork


class GroupPlanner:
    """Tracks member groups as sets."""

    def __init__(self) -> None:
        """Start with no members."""
        self._members: set[str] = set()
        self._net = FlowNetwork()

    def active(self) -> set[str]:
        """The current member set."""
        return self._members

    def apply(self) -> None:
        """Push per-member capacities in sorted (deterministic) order."""
        for name in sorted(self.active()):
            self._net.set_capacity(name, 1.0)
