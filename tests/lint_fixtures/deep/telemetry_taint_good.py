"""Good: telemetry reads stay on the reporting plane."""
from repro.monitoring.metricsdb import MetricsDb
from repro.obs.instruments import get_telemetry


class UsageReporter:
    """Renders observed metrics without feeding them back."""

    def __init__(self) -> None:
        """Hold a metrics store."""
        self._db = MetricsDb()

    def report_line(self) -> str:
        """Render an observed counter value as text."""
        observed = get_telemetry().counter("io.bytes").value
        rate = self._db.rate("oss1", "bw")
        return f"bytes={observed} rate={rate}"
