"""Good: event callbacks batch network work through one Epoch."""
from repro.core.flow import Epoch, FlowNetwork


class TickExecutor:
    """Per-tick executor that batches re-solves through one Epoch."""

    def __init__(self, engine) -> None:
        """Wire the per-tick callback and the Epoch flush."""
        self._engine = engine
        self._net = FlowNetwork()
        self._epoch = Epoch(self._flush, engine=engine)
        self._engine.every(1.0, self._on_tick)

    def _on_tick(self) -> None:
        """Mutates the network, then requests a batched re-solve."""
        self._net.set_capacity("link", 5.0)
        self._epoch.request("tick")

    def _flush(self, label: str) -> None:
        """The Epoch flush: the one place per-tick solves happen."""
        self._net.solve()
