"""Good: both guard idioms from repro/obs/instruments.py."""
from repro.obs.instruments import get_telemetry


def record(nbytes: float) -> None:
    """Nested guard: one attribute read when disabled."""
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.counter("fixture.bytes").add(float(nbytes))


def record_early(nbytes: float) -> None:
    """Early-return guard."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("fixture.bytes").add(float(nbytes))
