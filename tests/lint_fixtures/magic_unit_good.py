"""Good: named module-level constants and repro.units carry the numbers."""
from repro.units import GB, HOUR, KiB, MiB

_WINDOW_SLOTS = 3600  # a *count* of one-second slots, named at module level


def cost(n_bytes: int) -> float:
    """Unit arithmetic through named constants only."""
    return n_bytes / MiB + 10 * GB * 2 * HOUR + 4 * KiB + _WINDOW_SLOTS
