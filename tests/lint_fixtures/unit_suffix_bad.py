"""Bad: scaled units smuggled through parameter and field names."""
from dataclasses import dataclass


@dataclass
class Probe:
    timeout_ms: float = 5.0
    link_gbps: float = 40.0


def transfer(size_mb: int, latency_us: float) -> float:
    return size_mb / latency_us
