"""Good: the published surface documents its contract; private helpers
stay free to be terse."""

__all__ = ["Budget", "spend"]


class Budget:
    """A spending limit, in normalized units."""

    limit: float = 0.0


def spend(amount: float) -> float:
    """Record one expense and return it."""
    return amount


def _helper() -> None:
    pass
