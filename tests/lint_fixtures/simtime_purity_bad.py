"""Bad: a DES process body reaching the host."""


def writer_process(engine, path):
    with open(path, "w") as fh:
        fh.write("start")
    yield engine.timeout(1.0)
    print("done")
