"""Bad: unit knowledge re-encoded as literals inside arithmetic."""


def cost(n_bytes: int) -> float:
    chunk = 1 << 20
    rate = 10 * 10 ** 9
    window = 2 * 3600
    return n_bytes / chunk + rate * window + 4 * 1024
