"""Good: unordered sources are sorted before iteration."""
import os


def names(path):
    """Deterministic listing order."""
    return [name for name in sorted(os.listdir(path))]


def tags():
    """Sets are sorted before iteration."""
    return [t for t in sorted({"a", "b", "c"})]
