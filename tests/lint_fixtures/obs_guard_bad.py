"""Bad: an unguarded instrument mutation on the hot path."""
from repro.obs.instruments import get_telemetry


def record(nbytes: float) -> None:
    get_telemetry().counter("fixture.bytes").add(float(nbytes))
