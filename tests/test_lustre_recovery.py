"""Recovery simulation tests (§IV-D features)."""

import pytest

from repro.lustre.recovery import RecoverySpec, simulate_recovery


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoverySpec(rpc_timeout=0)
        with pytest.raises(ValueError):
            RecoverySpec(journal_speedup=0)


class TestStandardRecovery:
    def test_discovery_is_timeout_scale(self):
        o = simulate_recovery(n_clients=1000, imperative=False,
                              absent_fraction=0.0, seed=1)
        spec = RecoverySpec()
        # All clients discover within [timeout, 1.5*timeout] + reconnect.
        assert o.window_seconds >= spec.rpc_timeout
        assert o.window_seconds <= spec.recovery_window

    def test_dead_clients_force_full_window(self):
        o = simulate_recovery(n_clients=1000, imperative=False,
                              absent_fraction=0.01, seed=1)
        assert o.window_seconds == pytest.approx(RecoverySpec().recovery_window)
        assert o.evicted == 10


class TestImperativeRecovery:
    def test_window_collapses_to_seconds(self):
        std = simulate_recovery(n_clients=5000, imperative=False, seed=2)
        imp = simulate_recovery(n_clients=5000, imperative=True, seed=2)
        assert imp.window_seconds < 0.2 * std.window_seconds

    def test_ir_handles_dead_clients_gracefully(self):
        o = simulate_recovery(n_clients=1000, imperative=True,
                              absent_fraction=0.01, seed=3)
        assert o.window_seconds < 60.0
        assert o.evicted == 10


class TestJournaling:
    def test_hp_journaling_divides_replay(self):
        stock = simulate_recovery(n_clients=100, hp_journaling=False, seed=4)
        hp = simulate_recovery(n_clients=100, hp_journaling=True, seed=4)
        assert hp.replay_seconds == pytest.approx(
            stock.replay_seconds / RecoverySpec().journal_speedup)
        assert hp.window_seconds == stock.window_seconds


class TestOutcome:
    def test_blackout_is_window_plus_replay(self):
        o = simulate_recovery(n_clients=100, seed=5)
        assert o.blackout_seconds == pytest.approx(
            o.window_seconds + o.replay_seconds)

    def test_all_live_clients_reconnect(self):
        o = simulate_recovery(n_clients=2000, absent_fraction=0.005, seed=6)
        assert o.reconnected == 2000 - o.evicted

    def test_rows_render(self):
        assert len(simulate_recovery(n_clients=10, seed=7).rows()) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_recovery(n_clients=0)
        with pytest.raises(ValueError):
            simulate_recovery(n_clients=10, absent_fraction=1.0)
