"""Queueing-replay tests: exact FIFO semantics and latency statistics."""

import numpy as np
import pytest

from repro.workloads.model import RequestTrace
from repro.workloads.replay import (
    ReplayResult,
    replay_fifo,
    replay_trace,
    service_times_for,
)


class TestServiceTimes:
    def test_affine_in_size(self):
        s = service_times_for(np.array([0, 1_000_000]), bandwidth=1e6,
                              positioning_time=0.01)
        assert s[0] == pytest.approx(0.01)
        assert s[1] == pytest.approx(1.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            service_times_for(np.array([1]), bandwidth=0)
        with pytest.raises(ValueError):
            service_times_for(np.array([1]), bandwidth=1, positioning_time=-1)


class TestReplayFifo:
    def test_idle_station_no_wait(self):
        arrivals = np.array([0.0, 10.0, 20.0])
        services = np.array([1.0, 1.0, 1.0])
        waits, lat = replay_fifo(arrivals, services)
        assert np.allclose(waits, 0.0)
        assert np.allclose(lat, 1.0)

    def test_back_to_back_queueing(self):
        arrivals = np.zeros(3)
        services = np.array([2.0, 2.0, 2.0])
        waits, lat = replay_fifo(arrivals, services, n_servers=1)
        assert waits.tolist() == [0.0, 2.0, 4.0]
        assert lat.tolist() == [2.0, 4.0, 6.0]

    def test_multi_server_parallelism(self):
        arrivals = np.zeros(4)
        services = np.full(4, 3.0)
        waits, _ = replay_fifo(arrivals, services, n_servers=4)
        assert np.allclose(waits, 0.0)
        waits2, _ = replay_fifo(arrivals, services, n_servers=2)
        assert sorted(waits2.tolist()) == [0.0, 0.0, 3.0, 3.0]

    def test_lindley_recursion_agreement(self):
        """Single-server FIFO must satisfy the Lindley recursion exactly."""
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 100, 500))
        services = rng.exponential(0.2, 500)
        waits, _ = replay_fifo(arrivals, services, n_servers=1)
        w = 0.0
        for i in range(1, 500):
            w = max(0.0, w + services[i - 1] - (arrivals[i] - arrivals[i - 1]))
            assert waits[i] == pytest.approx(w)

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ValueError):
            replay_fifo(np.array([1.0, 0.0]), np.array([1.0, 1.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_fifo(np.array([0.0]), np.array([1.0]), n_servers=0)
        with pytest.raises(ValueError):
            replay_fifo(np.array([0.0]), np.array([1.0, 2.0]))


class TestReplayTrace:
    def _trace(self):
        return RequestTrace(
            times=[0.0, 0.1, 0.2, 5.0],
            sizes=[1_000_000, 1_000_000, 4_000, 4_000],
            is_write=[True, True, False, False],
            source=[0, 0, 1, 1],
        )

    def test_end_to_end(self):
        result = replay_trace(self._trace(), bandwidth=1e7, n_servers=1)
        assert len(result.latencies) == 4
        assert (result.latencies >= result.waits).all()

    def test_filters(self):
        result = replay_trace(self._trace(), bandwidth=1e7)
        reads = result.mean(reads_only=True)
        writes_and_reads = result.mean()
        assert reads < writes_and_reads  # reads here are tiny
        assert result.percentile(50, source=1) == result.percentile(
            50, reads_only=True)

    def test_empty_filter_raises(self):
        result = replay_trace(self._trace(), bandwidth=1e7)
        with pytest.raises(ValueError):
            result.mean(source=7)

    def test_utilization_proxy_bounds(self):
        result = replay_trace(self._trace(), bandwidth=1e7)
        assert 0.0 <= result.utilization_proxy < 1.0


class TestEdgeCases:
    def test_empty_trace_replays_to_empty_result(self):
        trace = RequestTrace(times=[], sizes=[], is_write=[])
        result = replay_trace(trace, bandwidth=1e7, n_servers=4)
        assert len(result.latencies) == 0
        with pytest.raises(ValueError, match="no requests match"):
            result.percentile(99)
        with pytest.raises(ValueError, match="no requests match"):
            result.mean()

    def test_empty_arrays_replay_fifo(self):
        waits, lat = replay_fifo(np.array([]), np.array([]), n_servers=3)
        assert len(waits) == 0 and len(lat) == 0

    def test_multi_server_matches_single_on_serial_trace(self):
        """When every request finishes before the next arrives, server
        count is irrelevant: c-server FIFO must equal single-server."""
        arrivals = np.array([0.0, 5.0, 10.0, 15.0, 20.0])
        services = np.array([1.0, 2.0, 3.0, 1.5, 0.5])  # all < 5s gaps
        w1, l1 = replay_fifo(arrivals, services, n_servers=1)
        for c in (2, 4, 8):
            wc, lc = replay_fifo(arrivals, services, n_servers=c)
            assert np.array_equal(w1, wc)
            assert np.array_equal(l1, lc)
        assert np.allclose(w1, 0.0)

    def test_zero_byte_requests_cost_positioning_only(self):
        sizes = np.zeros(3)
        services = service_times_for(sizes, bandwidth=1e9,
                                     positioning_time=0.004)
        assert np.allclose(services, 0.004)
        trace = RequestTrace(times=[0.0, 10.0, 20.0], sizes=sizes,
                             is_write=[False, False, False])
        result = replay_trace(trace, bandwidth=1e9)
        assert np.allclose(result.latencies, 0.004)
        assert np.allclose(result.waits, 0.0)
