"""OST tests: fill penalty curve, allocation accounting."""

import numpy as np
import pytest

from repro.lustre.ost import OBDFILTER_EFFICIENCY, Ost, OstSpec, fill_penalty
from repro.units import TB


class TestFillPenalty:
    def test_flat_below_half(self):
        # "performance degradation when the utilization ... greater than 50%"
        assert fill_penalty(0.0) == 1.0
        assert fill_penalty(0.3) == 1.0
        assert fill_penalty(0.5) == 1.0

    def test_degrades_past_half(self):
        assert fill_penalty(0.6) < 1.0

    def test_severe_past_seventy(self):
        # "severe performance degradation after the resource is 70% or
        # more full" — the knee steepens past 0.7.
        slope_50_70 = (fill_penalty(0.5) - fill_penalty(0.7)) / 0.2
        slope_70_90 = (fill_penalty(0.7) - fill_penalty(0.9)) / 0.2
        assert slope_70_90 > 1.5 * slope_50_70
        assert fill_penalty(0.9) < 0.6

    def test_monotone_nonincreasing(self):
        fills = np.linspace(0, 1, 101)
        pen = fill_penalty(fills)
        assert (np.diff(pen) <= 1e-12).all()

    def test_clips_out_of_range(self):
        assert fill_penalty(-0.5) == 1.0
        assert fill_penalty(1.5) == fill_penalty(1.0)

    def test_vectorized(self):
        out = fill_penalty(np.array([0.0, 0.7, 1.0]))
        assert out.shape == (3,)
        assert out[0] == 1.0 and out[2] == pytest.approx(0.35)


class TestOst:
    def make(self, capacity=16 * TB):
        return Ost(0, OstSpec(capacity_bytes=capacity))

    def test_allocation_accounting(self):
        ost = self.make()
        ost.allocate(1 * TB)
        assert ost.used_bytes == 1 * TB
        assert ost.n_objects == 1
        assert ost.fill_fraction == pytest.approx(1 / 16)

    def test_enospc(self):
        ost = self.make(capacity=100)
        with pytest.raises(OSError):
            ost.allocate(101)

    def test_release(self):
        ost = self.make()
        ost.allocate(1000)
        ost.release(400)
        assert ost.used_bytes == 600
        ost.release(10_000)  # over-release clamps at zero
        assert ost.used_bytes == 0

    def test_fs_bandwidth_applies_obdfilter_and_fill(self):
        ost = self.make()
        raw = 1e9
        fresh = ost.fs_bandwidth(raw)
        assert fresh == pytest.approx(raw * OBDFILTER_EFFICIENCY)
        ost.allocate(int(0.9 * ost.spec.capacity_bytes))
        full = ost.fs_bandwidth(raw)
        assert full < 0.6 * fresh

    def test_negative_sizes_rejected(self):
        ost = self.make()
        with pytest.raises(ValueError):
            ost.allocate(-1)
        with pytest.raises(ValueError):
            ost.release(-1)

    def test_component_name(self):
        assert Ost(17, OstSpec(capacity_bytes=1)).component == "ost:17"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            OstSpec(capacity_bytes=0)
        with pytest.raises(ValueError):
            OstSpec(capacity_bytes=1, obdfilter_efficiency=1.5)
