"""End-to-end path construction tests on the mini system."""

import math

import pytest

from repro.core.path import PathBuilder, Transfer
from repro.network.lnet import RoundRobinRouting
from repro.units import GB


def transfer_for(system, ost_index=0, demand=1 * GB, client_idx=0, name="t0",
                 osts=None):
    return Transfer(
        name=name,
        client=system.clients[client_idx],
        ost_indices=osts or (ost_index,),
        demand=demand,
    )


class TestTransfer:
    def test_validation(self, mini_system):
        with pytest.raises(ValueError):
            Transfer("x", mini_system.clients[0], ())
        with pytest.raises(ValueError):
            Transfer("x", mini_system.clients[0], (0,), demand=0.0)


class TestBuild:
    def test_flow_per_ost(self, mini_system):
        builder = PathBuilder(mini_system)
        net = builder.build([transfer_for(mini_system, osts=(0, 1, 2))])
        assert net.n_flows == 3

    def test_path_crosses_all_layers(self, mini_system):
        builder = PathBuilder(mini_system)
        t = transfer_for(mini_system)
        net = builder.build([t])
        res = net.solve()
        flow_name = res.flow_names[0]
        assert flow_name == "t0->ost0"
        # The delivered rate respects every layer on the path.
        ost_cap = mini_system.ost_flow_capacities(fs_level=True)[0]
        assert res.rates[0] <= min(t.demand, ost_cap) + 1e-6

    def test_router_usage_tracked(self, mini_system):
        builder = PathBuilder(mini_system)
        builder.build([transfer_for(mini_system)])
        usage = builder.router_usage()
        assert sum(usage.values()) == 1

    def test_block_level_skips_obdfilter(self, mini_system):
        fs_builder = PathBuilder(mini_system, fs_level=True)
        blk_builder = PathBuilder(mini_system, fs_level=False)
        t = [transfer_for(mini_system, demand=math.inf)]
        fs_rate = fs_builder.solve(t).total
        blk_rate = blk_builder.solve(t).total
        assert blk_rate > fs_rate

    def test_include_torus_adds_links(self, mini_system):
        plain = PathBuilder(mini_system, include_torus=False)
        torus = PathBuilder(mini_system, include_torus=True)
        t = [transfer_for(mini_system)]
        n_plain = plain.build(t).n_components
        n_torus = torus.build(t).n_components
        assert n_torus > n_plain

    def test_policy_override(self, mini_system):
        builder = PathBuilder(
            mini_system, policy=RoundRobinRouting(mini_system.lnet))
        res = builder.solve([transfer_for(mini_system)])
        assert res.total > 0

    def test_node_sharing_caps_colocated_transfers(self, mini_system):
        """Two transfers on the same client share its stack cap."""
        client = mini_system.clients[0]
        builder = PathBuilder(mini_system)
        transfers = [
            Transfer("a", client, (0,), demand=client.bw_cap),
            Transfer("b", client, (1,), demand=client.bw_cap),
        ]
        res = builder.solve(transfers)
        rates = builder.transfer_rates(res, transfers)
        assert rates["a"] + rates["b"] <= client.bw_cap * (1 + 1e-6)

    def test_transfer_rates_aggregate_stripes(self, mini_system):
        builder = PathBuilder(mini_system)
        t = transfer_for(mini_system, osts=(0, 1), demand=0.5 * GB)
        res = builder.solve([t])
        rates = builder.transfer_rates(res, [t])
        assert rates["t0"] == pytest.approx(0.5 * GB, rel=1e-6)


class TestSaturation:
    def test_couplet_binds_under_heavy_load(self, mini_system):
        """Enough demand saturates the fs-level couplet caps — the
        pre-upgrade 320 GB/s mechanism in miniature."""
        builder = PathBuilder(mini_system)
        fs = list(mini_system.filesystems.values())[0]
        transfers = []
        for i, client in enumerate(mini_system.clients[:64]):
            ost = fs.osts[i % len(fs.osts)].index
            transfers.append(Transfer(f"w{i}", client, (ost,), demand=math.inf))
        res = builder.solve(transfers)
        saturated = res.saturated_components()
        assert any(c.startswith("couplet:") for c in saturated)
        # Total equals the namespace couplet budget.
        ns_ssus = {o.ssu_index for o in fs.osts}
        budget = sum(mini_system.ssus[s].couplet.bw_cap(fs_level=True)
                     for s in ns_ssus)
        assert res.total == pytest.approx(budget, rel=0.01)


class TestIncrementalResolve:
    """PathBuilder.resolve: delta re-solves must match a fresh builder."""

    def _transfers(self, system):
        fs = list(system.filesystems.values())[0]
        return [
            Transfer(f"p{i}", system.clients[(i * 7) % len(system.clients)],
                     (fs.osts[i % len(fs.osts)].index,), demand=1 * GB)
            for i in range(8)
        ]

    @staticmethod
    def _rates_by_name(result):
        return dict(zip(result.flow_names, result.rates))

    def _assert_matches_fresh(self, system, builder, transfers):
        incremental = builder.resolve(transfers)
        fresh = PathBuilder(system, fs_level=True).solve(transfers)
        got = self._rates_by_name(incremental)
        want = self._rates_by_name(fresh)
        assert set(got) == set(want)
        for name, rate in want.items():
            assert got[name] == pytest.approx(rate, rel=1e-9), name

    def test_capacity_faults_ride_the_delta_path(self, mini_system):
        transfers = self._transfers(mini_system)
        builder = PathBuilder(mini_system, fs_level=True)
        self._assert_matches_fresh(mini_system, builder, transfers)
        solves_before = builder._net.solve_counts["full"]
        # Capacity-only faults: cable degradation and controller failover
        # must not rebuild the network.
        mini_system.fabric.degrade_cable(mini_system.osses[0].name, 0.3)
        self._assert_matches_fresh(mini_system, builder, transfers)
        mini_system.ssus[0].couplet.fail_controller(0)
        self._assert_matches_fresh(mini_system, builder, transfers)
        mini_system.ssus[0].couplet.restore_controller(0)
        mini_system.fabric.repair_cable(mini_system.osses[0].name)
        self._assert_matches_fresh(mini_system, builder, transfers)
        assert builder._net.solve_counts["full"] == solves_before

    def test_router_change_rebuilds_and_matches(self, mini_system):
        transfers = self._transfers(mini_system)
        builder = PathBuilder(mini_system, fs_level=True)
        self._assert_matches_fresh(mini_system, builder, transfers)
        first_net = builder._net
        name = mini_system.routers[0].name
        mini_system.lnet.set_router_online(name, False)
        mini_system.fabric.fail_cable(name)
        self._assert_matches_fresh(mini_system, builder, transfers)
        assert builder._net is not first_net  # fingerprint forced a rebuild
        mini_system.lnet.set_router_online(name, True)
        mini_system.fabric.repair_cable(name)
        self._assert_matches_fresh(mini_system, builder, transfers)

    def test_different_transfer_list_rebuilds(self, mini_system):
        transfers = self._transfers(mini_system)
        builder = PathBuilder(mini_system, fs_level=True)
        builder.resolve(transfers)
        first_net = builder._net
        builder.resolve(list(transfers))  # equal content, different object
        assert builder._net is not first_net
