"""E10 — §IV-E: the 2010 human-error incident replay (Lesson 11).

"the affected storage array was taken offline, while still in the rebuild
mode, losing journal data for more than a million files managed by that
controller pair.  Recovery of the lost files took more than two weeks,
with 95% successful recovery rate ...  A design using 10 enclosures per
storage controller pair would have tolerated this failure scenario."

Replays the exact timeline against both enclosure geometries.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.ops.incidents import replay_2010_incident


def test_e10_incident_replay(benchmark, report):
    five = benchmark.pedantic(lambda: replay_2010_incident(5),
                              rounds=1, iterations=1)
    ten = replay_2010_incident(10)

    rows = []
    for o in (five, ten):
        rows.append((
            f"{o.n_enclosures} enclosures",
            o.max_effective_erasures,
            "FAILED" if o.journal_replay_failed else "tolerated",
            f"{o.files_lost:,}",
            f"{o.recovery_rate:.0%}" if o.files_lost else "-",
            f"{o.recovery_days:.1f} d" if o.files_lost else "-",
        ))
    text = render_table(
        ["design", "worst effective erasures", "journal replay",
         "files lost", "recovered", "recovery time"],
        rows, title="2010 incident replay (paper: §IV-E, Lesson 11)")
    report("E10_incident", text)

    # Spider I's actual geometry: loss of >1M files, ~95% recovered over
    # more than two weeks.
    assert five.journal_replay_failed
    assert five.files_lost > 1_000_000
    assert five.recovery_rate == pytest.approx(0.95, abs=0.001)
    assert five.recovery_days > 13.0
    # The 10-enclosure design tolerates the identical event sequence.
    assert ten.tolerated
    assert ten.files_lost == 0
    assert ten.max_effective_erasures == 2
