"""A4 — §VII ablation: stripe-count best practices.

"placing small files or directories containing many small files on a
single OST by setting the striping count to 1 ... improves the stat
performance since every stat operation must communicate with every OST
which contains file or directory data.  Other examples include employing
large and stripe-aligned I/O requests whenever possible."

Sweeps stripe count for (a) metadata-side cost — sustainable stat rate —
and (b) data-side single-file bandwidth, exposing the small-file /
large-file crossover behind the guidance.
"""

import math

import pytest

from repro.analysis.reporting import render_table
from repro.core.path import PathBuilder, Transfer
from repro.lustre.mds import MetadataServer, OpMix
from repro.units import GB

STRIPE_COUNTS = (1, 2, 4, 8, 16)


def test_a4_stripe_count_ablation(benchmark, spider2_culled, report):
    system = spider2_culled
    mds = MetadataServer()

    def run():
        out = {}
        fs = system.filesystems[next(iter(system.filesystems))]
        ns_osts = [o.index for o in fs.osts]
        # A large shared file written collectively by 16 clients — the
        # "large and stripe-aligned I/O" case the guidance targets.
        writers = system.clients[:16]
        for sc in STRIPE_COUNTS:
            stat_rate = mds.sustainable_rate(
                OpMix(stats=1000, mean_stripe_count=sc))
            stripes = tuple(ns_osts[i * 37] for i in range(sc))
            builder = PathBuilder(system)
            transfers = [
                Transfer(f"w{i}", c, stripes, demand=math.inf)
                for i, c in enumerate(writers)
            ]
            result = builder.solve(transfers)
            out[sc] = (stat_rate, result.total)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (sc, f"{stat:,.0f} stats/s", f"{bw / GB:.1f} GB/s")
        for sc, (stat, bw) in sweep.items()
    ]
    text = render_table(
        ["stripe count", "sustainable stat rate",
         "shared-file bandwidth (16 writers)"],
        rows, title="Stripe-count tradeoff (paper: §VII best practices)")
    report("A4_striping", text)

    # stat cost grows with stripes: single-OST striping more than doubles
    # the stat throughput vs 4-wide (the small-file guidance).
    assert sweep[1][0] > 1.8 * sweep[4][0]
    # bandwidth grows with stripes — one OST gates the narrow layout, wide
    # striping recruits more spindles (the large-file guidance).
    assert sweep[4][1] > 3.0 * sweep[1][1]
    assert sweep[16][1] > sweep[4][1]
