"""E7 — §IV-C / §VI-C: fill-level degradation and the purge policy.

"The OLCF as well as many other HPC centers that use Lustre note a severe
performance degradation after the resource is 70% or more full."
"We have seen direct performance degradation when the utilization of the
filesystem is greater than 50%."
"Files that are not created, modified, or accessed within a contiguous 14
day range are deleted by an automated process."

Regenerates (a) the bandwidth-vs-fill curve and (b) a 60-day scratch
simulation with and without the weekly purge.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_kv, render_series
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec, fill_penalty
from repro.tools.purger import Purger
from repro.units import DAY, TB


def _sixty_days(purge: bool, seed: int = 3) -> tuple[float, float]:
    """Run 60 days of scratch churn; return (max fill, final fill)."""
    osts = [Ost(i, OstSpec(capacity_bytes=4 * TB)) for i in range(4)]
    fs = LustreFilesystem("scratch", osts, default_stripe_count=2)
    fs.mkdir("/u", now=0.0)
    purger = Purger(fs)
    rng = np.random.default_rng(seed)
    fills = []
    for day in range(60):
        now = day * DAY
        for k in range(6):
            fs.create_file(f"/u/d{day}k{k}", now=now,
                           size=int(rng.uniform(20, 60) * 1e9))
        for entry in list(fs.namespace.files()):
            if rng.random() < 0.05:
                fs.read_file(entry.path, now=now)
        if purge and day % 7 == 0:
            purger.sweep(now=now)
        fills.append(fs.fill_fraction)
    return max(fills), fills[-1]


def test_e7_fill_and_purge(benchmark, report):
    # (a) the degradation curve.
    fills = np.array([0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    penalties = fill_penalty(fills)
    curve = render_series(
        "fill", "relative bandwidth",
        [(f"{f:.0%}", float(p)) for f, p in zip(fills, penalties)],
        title="OST bandwidth vs fill level (paper: §IV-C, §VI-C)",
        fmt="{:.2f}")

    # (b) 60 days of scratch with and without purging.
    (max_unpurged, end_unpurged) = benchmark.pedantic(
        lambda: _sixty_days(False), rounds=1, iterations=1)
    max_purged, end_purged = _sixty_days(True)

    text = curve + "\n\n" + render_kv([
        ("60-day max fill, no purging", f"{max_unpurged:.0%}"),
        ("60-day max fill, 14-day purge", f"{max_purged:.0%}"),
        ("bandwidth penalty at unpurged peak",
         f"{1 - fill_penalty(max_unpurged):.0%} lost"),
        ("bandwidth penalty at purged peak",
         f"{1 - fill_penalty(max_purged):.0%} lost"),
    ], title="Scratch lifecycle")
    report("E7_fill_and_purge", text)

    # Degradation claims: flat to 50%, knee at 70%, severe beyond.
    assert fill_penalty(0.5) == 1.0
    assert fill_penalty(0.6) < 1.0
    assert fill_penalty(0.9) < 0.6
    # Purging keeps scratch left of the knee; without it the same load
    # blows past 70%.
    assert max_unpurged > 0.70
    assert max_purged < 0.70
