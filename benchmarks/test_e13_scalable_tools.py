"""E13 — §VI-C / Lesson 19: scalable tools vs standard Linux tools.

"du imposes a heavy load on the Lustre MDS when run at this scale ...
[cp, tar, find] are single threaded commands, designed to run on a single
file system client" — versus LustreDU and the dcp/dtar/dfind family.

Regenerates two tables: (a) the MDS cost of client-side `du` vs the
LustreDU server sweep (plus free snapshot queries), and (b) wall-clock
speedups of the parallel tools over their serial counterparts at several
worker counts, showing the PFS-bandwidth saturation crossover.
"""

import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.tools.lustredu import LustreDu, client_du_cost
from repro.tools.ptools import ParallelTool, SerialTool
from repro.units import GB, MiB, TB


def _populated_fs(n_files=5000):
    osts = [Ost(i, OstSpec(capacity_bytes=40 * TB)) for i in range(16)]
    fs = LustreFilesystem("atlas-model", osts, default_stripe_count=4)
    fs.mkdir("/proj", now=0.0)
    for i in range(n_files):
        fs.create_file(f"/proj/f{i:05d}", now=float(i),
                       size=(1 + i % 64) * 16 * MiB,
                       project=f"proj{i % 5}")
    return fs


def test_e13_scalable_tools(benchmark, report):
    fs = _populated_fs()

    # (a) du vs LustreDU.
    du = LustreDu(fs)
    snap = benchmark.pedantic(lambda: du.sweep(now=0.0), rounds=1,
                              iterations=1)
    _total, client_cost = client_du_cost(fs)
    before = fs.mds.busy_seconds
    du.query(project="proj0")
    query_cost = fs.mds.busy_seconds - before

    du_table = render_kv([
        ("files", f"{snap.n_files:,}"),
        ("client `du` MDS time", f"{client_cost:.3f} s"),
        ("LustreDU sweep MDS time", f"{snap.sweep_mds_seconds:.4f} s"),
        ("LustreDU query MDS time", f"{query_cost:.4f} s"),
        ("sweep advantage", f"{client_cost / snap.sweep_mds_seconds:.0f}x"),
    ], title="du vs LustreDU (paper: §VI-C)")

    # (b) serial vs parallel tools.
    serial = SerialTool(fs)
    rows = []
    speedups = {}
    for tool_name, serial_run in (("copy", serial.copy("/proj")),
                                  ("find", serial.find("/proj"))):
        for workers in (8, 64, 512):
            ptool = ParallelTool(fs, workers, pfs_aggregate_bw=240 * GB)
            run = (ptool.copy if tool_name == "copy" else ptool.find)("/proj")
            speedup = serial_run.wall_seconds / run.wall_seconds
            speedups[(tool_name, workers)] = speedup
            rows.append((run.tool, f"{serial_run.wall_seconds:.0f} s",
                         f"{run.wall_seconds:.1f} s", f"{speedup:.0f}x"))
    tool_table = render_table(
        ["tool", "serial", "parallel", "speedup"], rows,
        title="Serial vs parallel tools (dcp/dfind, paper: §VI-C)")

    report("E13_scalable_tools", du_table + "\n\n" + tool_table)

    assert client_cost > 50 * snap.sweep_mds_seconds
    assert query_cost == 0.0
    assert speedups[("copy", 8)] > 4.0
    assert speedups[("find", 64)] > 30.0
    # Saturation: going 64 -> 512 workers helps find (latency-bound) much
    # more than copy (PFS-bandwidth-bound) — the crossover of Lesson 19.
    copy_scaling = speedups[("copy", 512)] / speedups[("copy", 64)]
    find_scaling = speedups[("find", 512)] / speedups[("find", 64)]
    assert find_scaling > copy_scaling
