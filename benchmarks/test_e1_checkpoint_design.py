"""E1 — §III-A: the checkpoint design equation.

"Titan has 600 TB of main memory.  One key design principle was to
checkpoint 75% of Titan's memory in 6 minutes.  This drove the requirement
for 1 TB/s as the peak sequential I/O bandwidth."

Regenerates the sizing table: the implied requirement (1.25 TB/s, rounded
by the paper to 1 TB/s), and the checkpoint time the built Spider II
actually delivers.
"""

import pytest

from repro.analysis.reporting import render_kv
from repro.units import GB, MINUTE, TB, fmt_bandwidth, fmt_duration
from repro.workloads.checkpoint import time_to_checkpoint

TITAN_MEMORY = 600 * TB
FRACTION = 0.75
GOAL = 6 * MINUTE


def test_e1_checkpoint_design(benchmark, spider2, report):
    delivered = spider2.aggregate_bandwidth(fs_level=False)
    t_delivered = benchmark(
        lambda: time_to_checkpoint(TITAN_MEMORY, FRACTION, delivered))
    implied = TITAN_MEMORY * FRACTION / GOAL
    t_at_1tbs = time_to_checkpoint(TITAN_MEMORY, FRACTION, 1000 * GB)

    text = render_kv([
        ("Titan memory", "600 TB"),
        ("checkpoint fraction", "75%"),
        ("goal", "6 min"),
        ("implied requirement", fmt_bandwidth(implied)),
        ("paper's stated requirement", "1 TB/s (rounded)"),
        ("checkpoint time at exactly 1 TB/s", fmt_duration(t_at_1tbs)),
        ("Spider II delivered (block)", fmt_bandwidth(delivered)),
        ("checkpoint time on Spider II", fmt_duration(t_delivered)),
    ], title="Checkpoint design point (§III-A)")
    report("E1_checkpoint_design", text)

    assert implied == pytest.approx(1.25 * 1000 * GB)
    assert delivered > 1000 * GB  # the stated requirement is met
    assert t_delivered < 7.5 * MINUTE  # and the goal approximately so
