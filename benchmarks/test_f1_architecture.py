"""F1 — Figure 1: the Spider II architecture inventory and its layered
bandwidth profile.

Regenerates the component census of the integration diagram (36 SSUs,
20,160 disks, 2,016 OSTs, 288 OSSes, 440 routers, 36 leaf switches,
18,688 clients, 32 PB) plus the Lesson 12 bottom-up ceiling table.
"""

import pytest

from repro.analysis.layers import profile_layers
from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.units import GB, PB, fmt_bandwidth, fmt_size


def test_f1_architecture_inventory(benchmark, report):
    system = benchmark.pedantic(
        lambda: build_spider2(seed=2014), rounds=1, iterations=1)
    inv = system.inventory()

    profile = profile_layers(system, fs_level=True)
    text = render_kv([
        ("SSUs", inv["ssus"]),
        ("disks", inv["disks"]),
        ("OSTs (RAID-6 8+2)", inv["osts"]),
        ("OSS nodes", inv["osses"]),
        ("I/O routers", inv["routers"]),
        ("IB leaf switches", inv["leaf_switches"]),
        ("namespaces", inv["namespaces"]),
        ("Titan clients", inv["clients"]),
        ("capacity", fmt_size(inv["capacity_bytes"])),
        ("block-level aggregate", fmt_bandwidth(
            system.aggregate_bandwidth(fs_level=False))),
    ], title="Spider II inventory (paper: Fig. 1 / §V)")
    text += "\n\n" + render_table(
        ["layer", "ceiling", "loss"], profile.loss_table(),
        title="Bottom-up layer profile (Lesson 12)")
    report("F1_architecture", text)

    # Paper-pinned counts.
    assert inv["ssus"] == 36
    assert inv["disks"] == 20_160
    assert inv["osts"] == 2_016
    assert inv["osses"] == 288
    assert inv["routers"] == 440
    assert inv["clients"] == 18_688
    assert inv["capacity_bytes"] == pytest.approx(32.26 * PB, rel=0.01)
    assert system.aggregate_bandwidth(fs_level=False) > 1000 * GB
