"""Perf gate: closing the remediation loop must stay cheap.

The closed loop adds detection draws, playbook step events, and the
nested §IV-D recovery simulations on top of a chaos campaign whose cost
is dominated by flow re-solves.  This bench runs the same random fault
day with and without a ``RemediationPolicy`` and asserts the remediated
run stays within 10% wall-clock — min-of-N, interleaved, so scheduler
noise hits both sides equally.  Results land in ``BENCH_resilience.json``
at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.placement import PlacementSpec
from repro.core.spider import SpiderSpec, SpiderSystem
from repro.faults import FaultCampaign, FaultPlan
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.torus import TorusSpec
from repro.resilience import RemediationPolicy
from repro.units import DAY, GB, HOUR

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_resilience.json"

_REPEATS = 5
_OVERHEAD_LIMIT = 0.10
_N_FAULTS = 12
_SEED = 2014


def _mini_system() -> SpiderSystem:
    spec = SpiderSpec(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4,
                                n_leaves=4),
        n_compute_nodes=128,
    )
    return SpiderSystem(spec, seed=_SEED)


def _run(policy: RemediationPolicy | None) -> float:
    # Campaigns mutate the system, so the build happens outside the
    # timed region — the bench measures campaign cost, not construction.
    # The plan window is half the horizon so every repair *and* rebuild
    # settles in both arms: the two sides then perform the same number of
    # flow re-solves and the delta is pure remediation machinery.
    system = _mini_system()
    plan = FaultPlan.random(system, duration=12 * HOUR, n_faults=_N_FAULTS,
                            seed=_SEED)
    campaign = FaultCampaign(system, plan, duration=DAY, remediation=policy)
    t0 = time.perf_counter()
    campaign.run()
    return time.perf_counter() - t0


def test_resilience_overhead_under_ten_percent(report):
    # Warm both paths (imports, allocator, caches) before measuring.
    _run(None)
    _run(RemediationPolicy(seed=_SEED))

    off_times, on_times = [], []
    for _ in range(_REPEATS):
        off_times.append(_run(None))
        on_times.append(_run(RemediationPolicy(seed=_SEED)))

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0

    payload = {
        "benchmark": "resilience_overhead",
        "workload": (f"FaultCampaign, {_N_FAULTS} random faults over "
                     f"one day on mini"),
        "repeats": _REPEATS,
        "best_baseline_s": best_off,
        "best_remediated_s": best_on,
        "overhead_fraction": overhead,
        "limit_fraction": _OVERHEAD_LIMIT,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_resilience", "\n".join([
        f"baseline campaign   (best of {_REPEATS}): {best_off * 1e3:.2f} ms",
        f"remediated campaign (best of {_REPEATS}): {best_on * 1e3:.2f} ms",
        f"overhead: {overhead:+.1%} (limit {_OVERHEAD_LIMIT:.0%})",
    ]))

    assert overhead < _OVERHEAD_LIMIT, (
        f"remediation overhead {overhead:.1%} exceeds "
        f"{_OVERHEAD_LIMIT:.0%} ({best_on * 1e3:.2f} ms remediated vs "
        f"{best_off * 1e3:.2f} ms baseline)"
    )
