"""Perf gate: in-band monitoring must stay cheap.

The overlay adds per-agent scrape ticks, tree-delayed delivery events,
window rollups, and alert evaluation on top of a chaos campaign whose
cost is dominated by flow re-solves.  This bench runs the same random
fault day with and without a ``MonitoringOverlay`` at an operational
cadence and asserts the monitored run stays within 10% wall-clock —
min-of-N, interleaved, so scheduler noise hits both sides equally.
Results land in ``BENCH_overlay.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.placement import PlacementSpec
from repro.core.spider import SpiderSpec, SpiderSystem
from repro.faults import FaultCampaign, FaultPlan
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.torus import TorusSpec
from repro.obs.overlay import MonitoringOverlay, OverlayConfig
from repro.resilience import RemediationPolicy
from repro.units import DAY, GB, HOUR, MINUTE

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_overlay.json"

_REPEATS = 5
_OVERHEAD_LIMIT = 0.10
#: a dense fault day — the baseline must be dominated by campaign work
#: (flow re-solves, playbooks), the regime the gate prices monitoring in
_N_FAULTS = 96
_SEED = 2014
#: the DDN-tool's operational cadence (§IV-A "regular rates"), not the
#: study's aggressive grid — the gate prices monitoring as deployed
_SCRAPE_INTERVAL = 5.0 * MINUTE
_ROLLUP_INTERVAL = 10.0 * MINUTE


def _mini_system() -> SpiderSystem:
    spec = SpiderSpec(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4,
                                n_leaves=4),
        n_compute_nodes=128,
    )
    return SpiderSystem(spec, seed=_SEED)


def _run(monitored: bool) -> float:
    # Campaigns mutate the system, so the build happens outside the
    # timed region — the bench measures campaign cost, not construction.
    # Both arms remediate; the delta is pure overlay machinery (scrape
    # ticks, tree deliveries, rollups, alerting, observed detection).
    system = _mini_system()
    plan = FaultPlan.random(system, duration=12 * HOUR, n_faults=_N_FAULTS,
                            seed=_SEED)
    monitor = None
    if monitored:
        config = OverlayConfig(scrape_interval=_SCRAPE_INTERVAL,
                               rollup_interval=_ROLLUP_INTERVAL, seed=_SEED)
        monitor = MonitoringOverlay(system, config)
    campaign = FaultCampaign(system, plan, duration=DAY,
                             remediation=RemediationPolicy(seed=_SEED),
                             monitor=monitor)
    t0 = time.perf_counter()
    campaign.run()
    return time.perf_counter() - t0


def test_overlay_overhead_under_ten_percent(report):
    # Warm both paths (imports, allocator, caches) before measuring.
    _run(False)
    _run(True)

    off_times, on_times = [], []
    for _ in range(_REPEATS):
        off_times.append(_run(False))
        on_times.append(_run(True))

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0

    payload = {
        "benchmark": "overlay_overhead",
        "workload": (f"remediated FaultCampaign, {_N_FAULTS} random faults "
                     f"over one day on mini, scrape every "
                     f"{_SCRAPE_INTERVAL:.0f} s"),
        "repeats": _REPEATS,
        "best_baseline_s": best_off,
        "best_monitored_s": best_on,
        "overhead_fraction": overhead,
        "limit_fraction": _OVERHEAD_LIMIT,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_overlay", "\n".join([
        f"baseline campaign  (best of {_REPEATS}): {best_off * 1e3:.2f} ms",
        f"monitored campaign (best of {_REPEATS}): {best_on * 1e3:.2f} ms",
        f"overhead: {overhead:+.1%} (limit {_OVERHEAD_LIMIT:.0%})",
    ]))

    assert overhead < _OVERHEAD_LIMIT, (
        f"overlay overhead {overhead:.1%} exceeds "
        f"{_OVERHEAD_LIMIT:.0%} ({best_on * 1e3:.2f} ms monitored vs "
        f"{best_off * 1e3:.2f} ms baseline)"
    )
