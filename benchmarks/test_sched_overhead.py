"""Perf gate: the facility scheduler must handle a dense job day cheaply.

The scheduler re-solves the flow network on every job start/finish/phase
change, so its cost grows with job count × phase count.  This bench runs
a 1,000+-job three-class mix through ``FacilityScheduler`` on a miniature
deployment and asserts two regression floors that pin the incremental
solver down (see ``docs/PERFORMANCE.md``):

* a jobs/s floor — the delta re-solve path must stay the fast path;
* a full-resolve ceiling — once warm, every re-solve must ride the
  delta/short-circuit/cached paths, never a from-scratch rebuild.

Results land in ``BENCH_sched.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.placement import PlacementSpec
from repro.core.spider import SpiderSpec, SpiderSystem
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.torus import TorusSpec
from repro.sched import FacilityScheduler, JobMix, QosPolicy, generate_jobs
from repro.units import GB, HOUR

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sched.json"

#: 27 jobs/hour at base rates over 44 h ≈ 1,200 jobs — comfortably past
#: the 1,000-job floor.  Job demands are fractions of the reference
#: bandwidth, so offered utilization is set by the rate scale alone;
#: base rates keep the system drainable within the default horizon tail
#: while the longer window accumulates the job count.
_RATE_SCALE = 1.0
_WINDOW = 44 * HOUR
_MIN_JOBS = 1_000
_SEED = 2014

#: best-of-N timing: a perf gate keyed to a single wall-clock sample
#: flakes with machine load, and the *minimum* over a few trials is the
#: standard variance control — it estimates the code's intrinsic cost,
#: which noise can only inflate, never deflate.
_TRIALS = 5

#: regression floor on throughput.  The incremental solver sustains
#: ~3,500 jobs/s on an unloaded machine (the from-scratch solver managed
#: ~356); the floor sits well above the old ceiling but leaves ~2×
#: headroom for slow or contended CI hosts.
_JOBS_PER_S_FLOOR = 1_500.0

#: regression ceiling on from-scratch solves.  The first allocation after
#: a fresh arbiter is necessarily full; everything after must be a delta,
#: short-circuit, or cached re-solve.
_MAX_FULL_RESOLVES = 2


def _mini_system() -> SpiderSystem:
    spec = SpiderSpec(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4,
                                n_leaves=4),
        n_compute_nodes=128,
    )
    return SpiderSystem(spec, seed=_SEED, build_clients=False)


def test_sched_thousand_job_day_within_budget(report):
    system = _mini_system()
    jobs = generate_jobs(
        JobMix().scaled(_RATE_SCALE),
        duration=_WINDOW,
        seed=_SEED,
        reference_bandwidth=system.aggregate_bandwidth(fs_level=True),
    )
    assert len(jobs) >= _MIN_JOBS, (
        f"arrival mix produced only {len(jobs)} jobs; "
        f"raise the rate scale or window")

    # As-deployed (caps off): the bench measures scheduler cost, and the
    # base mix oversubscribes the simulation class's QoS cap, which would
    # grow the backlog with the window instead of draining it.
    walls = []
    result = None
    solve_counts = None
    for _ in range(_TRIALS):
        sched = FacilityScheduler(system, jobs,
                                  policy=QosPolicy.disabled(), seed=_SEED)
        t0 = time.perf_counter()
        result = sched.run()
        walls.append(time.perf_counter() - t0)
        solve_counts = dict(sched.solve_counts)
    wall_s = min(walls)
    jobs_per_s = len(jobs) / wall_s

    payload = {
        "benchmark": "sched_overhead",
        "workload": (f"FacilityScheduler, {len(jobs)} jobs over "
                     f"{_WINDOW / HOUR:.0f} h on mini"),
        "n_jobs": len(jobs),
        "n_finished": result.n_finished,
        "n_censored": result.n_censored,
        "resolves": len(result.timeline),
        "solve_counts": solve_counts,
        "trials": _TRIALS,
        "wall_s": wall_s,
        "jobs_per_second": jobs_per_s,
        "jobs_per_second_floor": _JOBS_PER_S_FLOOR,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_sched", "\n".join([
        f"jobs scheduled: {len(jobs)} (finished {result.n_finished}, "
        f"censored {result.n_censored})",
        f"arbiter re-solves: {len(result.timeline)} "
        f"(counts {solve_counts})",
        f"wall clock: {wall_s:.2f} s best of {_TRIALS}",
        f"throughput: {jobs_per_s:.0f} jobs/s "
        f"(floor {_JOBS_PER_S_FLOOR:.0f})",
    ]))

    assert result.n_censored == 0, (
        f"{result.n_censored} jobs censored at the horizon; the bench "
        f"window must drain completely")
    assert jobs_per_s >= _JOBS_PER_S_FLOOR, (
        f"scheduling throughput {jobs_per_s:.0f} jobs/s fell below the "
        f"{_JOBS_PER_S_FLOOR:.0f} jobs/s regression floor")
    assert solve_counts["full"] <= _MAX_FULL_RESOLVES, (
        f"{solve_counts['full']} from-scratch solves; a warm arbiter "
        f"must re-solve incrementally (ceiling {_MAX_FULL_RESOLVES})")
