"""Perf gate: the facility scheduler must handle a dense job day cheaply.

The scheduler re-solves the flow network on every job start/finish/phase
change, so its cost grows with job count × phase count.  This bench runs
a 1,000+-job three-class mix through ``FacilityScheduler`` on a miniature
deployment and asserts the wall-clock stays within budget — the guard
that keeps arbitration O(events), not O(events²).  Results land in
``BENCH_sched.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.placement import PlacementSpec
from repro.core.spider import SpiderSpec, SpiderSystem
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.torus import TorusSpec
from repro.sched import FacilityScheduler, JobMix, QosPolicy, generate_jobs
from repro.units import GB, HOUR

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sched.json"

#: 27 jobs/hour at base rates over 44 h ≈ 1,200 jobs — comfortably past
#: the 1,000-job floor.  Job demands are fractions of the reference
#: bandwidth, so offered utilization is set by the rate scale alone;
#: base rates keep the system drainable within the default horizon tail
#: while the longer window accumulates the job count.
_RATE_SCALE = 1.0
_WINDOW = 44 * HOUR
_MIN_JOBS = 1_000
_WALL_BUDGET_S = 60.0
_SEED = 2014


def _mini_system() -> SpiderSystem:
    spec = SpiderSpec(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4,
                                n_leaves=4),
        n_compute_nodes=128,
    )
    return SpiderSystem(spec, seed=_SEED, build_clients=False)


def test_sched_thousand_job_day_within_budget(report):
    system = _mini_system()
    jobs = generate_jobs(
        JobMix().scaled(_RATE_SCALE),
        duration=_WINDOW,
        seed=_SEED,
        reference_bandwidth=system.aggregate_bandwidth(fs_level=True),
    )
    assert len(jobs) >= _MIN_JOBS, (
        f"arrival mix produced only {len(jobs)} jobs; "
        f"raise the rate scale or window")

    # As-deployed (caps off): the bench measures scheduler cost, and the
    # base mix oversubscribes the simulation class's QoS cap, which would
    # grow the backlog with the window instead of draining it.
    t0 = time.perf_counter()
    result = FacilityScheduler(system, jobs, policy=QosPolicy.disabled(),
                               seed=_SEED).run()
    wall_s = time.perf_counter() - t0

    payload = {
        "benchmark": "sched_overhead",
        "workload": (f"FacilityScheduler, {len(jobs)} jobs over "
                     f"{_WINDOW / HOUR:.0f} h on mini"),
        "n_jobs": len(jobs),
        "n_finished": result.n_finished,
        "n_censored": result.n_censored,
        "resolves": len(result.timeline),
        "wall_s": wall_s,
        "wall_budget_s": _WALL_BUDGET_S,
        "jobs_per_second": len(jobs) / wall_s,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_sched", "\n".join([
        f"jobs scheduled: {len(jobs)} (finished {result.n_finished}, "
        f"censored {result.n_censored})",
        f"arbiter re-solves: {len(result.timeline)}",
        f"wall clock: {wall_s:.2f} s (budget {_WALL_BUDGET_S:.0f} s)",
        f"throughput: {len(jobs) / wall_s:.0f} jobs/s",
    ]))

    assert result.n_censored == 0, (
        f"{result.n_censored} jobs censored at the horizon; the bench "
        f"window must drain completely")
    assert wall_s < _WALL_BUDGET_S, (
        f"scheduling {len(jobs)} jobs took {wall_s:.1f} s, over the "
        f"{_WALL_BUDGET_S:.0f} s budget")
