"""Perf gate for the metatier (A18): telemetry stays cheap, packing stays fast.

Two assertions keep the small-file tier honest as it grows:

* the aggregated tier's full timeline (untar storm, training reads,
  audit sweeps, compaction, warm migration) with telemetry + tracing
  fully enabled stays within 10% of the disabled run — min-of-N,
  interleaved, GC parked during the timed window so collector pauses
  don't masquerade as instrument cost, and a failing round re-measured
  (a real regression fails every round; a multi-second host-noise burst
  does not survive three).  This scopes the gate to the *metatier's*
  emission sites; the per-file baseline arm is dominated by the MDS/OST
  instrumentation that ``BENCH_obs.json`` already gates;
* the aggregated tier sustains a floor of tiny-file operations per
  wall-clock second, so needle packing never silently regresses into a
  per-file-cost path.  Results land in ``BENCH_meta.json`` at the repo
  root, including the paired-study headline gain.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from repro.lustre.ost import Ost, OstSpec
from repro.metatier import MetaStudySpec, run_meta_study
from repro.metatier.needles import SegmentSpec, SegmentStore
from repro.metatier.scenarios import (
    AggregatedTier,
    AuditSweep,
    TinyFileSizes,
    TrainingReads,
    UntarStorm,
)
from repro.metatier.shards import ShardedFilesystem
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.trace import Tracer, use_tracer
from repro.sim.engine import Engine
from repro.units import DAY, HOUR, MiB, TB

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_meta.json"

_REPEATS = 7
_ROUNDS = 3
_OVERHEAD_LIMIT = 0.10
_N_FILES = 6_000
#: tiny-file logical ops the aggregated tier must clear per wall second.
#: Measured ~300-500k ops/s on the reference container; the floor leaves
#: ample headroom for slower CI hosts while catching order-of-magnitude
#: regressions (e.g. a per-needle MDS op sneaking back in).
_OPS_PER_SECOND_FLOOR = 30_000.0


def _run_timeline() -> AggregatedTier:
    """The aggregated arm's standard day, on a fresh tier each call."""
    osts = [Ost(i, OstSpec(capacity_bytes=4 * TB)) for i in range(8)]
    fs = ShardedFilesystem("bench", osts, n_shards=4,
                           default_stripe_count=1)
    seg_spec = SegmentSpec(segment_bytes=64 * MiB, compact_threshold=0.25)
    stores = [SegmentStore(fs, name=f"store{i}", spec=seg_spec)
              for i in range(2)]
    tier = AggregatedTier(fs, stores, cache_hit_rate=0.8,
                          migrate_age=12 * HOUR, seed=2014)
    engine = Engine()
    storm = UntarStorm(n_files=_N_FILES, duration=1 * HOUR,
                       sizes=TinyFileSizes(seed=2014))
    storm.install(engine, tier)
    TrainingReads(storm.manifest, n_epochs=2, epoch_duration=1 * HOUR,
                  start=2 * HOUR, seed=2014).install(engine, tier)
    AuditSweep(storm.manifest, max_age=1 * DAY,
               interval=6 * HOUR).install(engine, tier)
    engine.run(until=2 * DAY)
    return tier


def _timed(fn) -> tuple[float, AggregatedTier]:
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        tier = fn()
        return time.perf_counter() - t0, tier
    finally:
        gc.enable()


def _run_off() -> tuple[float, AggregatedTier]:
    return _timed(_run_timeline)


def _run_on() -> tuple[float, AggregatedTier]:
    telemetry, tracer = Telemetry(enabled=True), Tracer(enabled=True)
    with use_telemetry(telemetry), use_tracer(tracer):
        return _timed(_run_timeline)


def _measure() -> tuple[float, float, AggregatedTier]:
    """One interleaved min-of-N round: (best_off, best_on, a tier)."""
    off_times, on_times = [], []
    tier = None
    for _ in range(_REPEATS):
        t_off, tier = _run_off()
        t_on, _ = _run_on()
        off_times.append(t_off)
        on_times.append(t_on)
    return min(off_times), min(on_times), tier


def test_meta_overhead_and_throughput_floor(report):
    # Warm both paths (imports, allocator, caches) before measuring.
    _run_off()
    _run_on()

    best_off = best_on = overhead = tier = None
    for _ in range(_ROUNDS):
        round_off, round_on, tier = _measure()
        round_overhead = round_on / round_off - 1.0
        if overhead is None or round_overhead < overhead:
            best_off, best_on, overhead = round_off, round_on, round_overhead
        if overhead < _OVERHEAD_LIMIT:
            break

    logical_ops = (tier.logical_creates + tier.logical_reads
                   + tier.logical_deletes + tier.audit_examined)
    ops_per_second = logical_ops / best_off

    # The headline gain, measured once (untimed) on the paired study.
    result = run_meta_study(
        MetaStudySpec(n_files=_N_FILES, seed=2014, with_faults=False))

    payload = {
        "benchmark": "meta_overhead",
        "workload": f"aggregated-tier timeline, {_N_FILES} tiny files",
        "repeats": _REPEATS,
        "best_off_s": best_off,
        "best_on_s": best_on,
        "overhead_fraction": overhead,
        "limit_fraction": _OVERHEAD_LIMIT,
        "logical_ops": logical_ops,
        "ops_per_wall_second": ops_per_second,
        "ops_per_second_floor": _OPS_PER_SECOND_FLOOR,
        "paired_study_gain": result.throughput_gain,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_meta", "\n".join([
        f"telemetry off (best of {_REPEATS}): {best_off * 1e3:.2f} ms",
        f"telemetry on  (best of {_REPEATS}): {best_on * 1e3:.2f} ms",
        f"overhead: {overhead:+.1%} (limit {_OVERHEAD_LIMIT:.0%})",
        f"tiny-file ops: {ops_per_second:,.0f}/s "
        f"(floor {_OPS_PER_SECOND_FLOOR:,.0f}/s)",
        f"paired-study gain: {result.throughput_gain:,.1f}x",
    ]))

    assert overhead < _OVERHEAD_LIMIT, (
        f"metatier telemetry overhead {overhead:.1%} exceeds "
        f"{_OVERHEAD_LIMIT:.0%} "
        f"({best_on * 1e3:.2f} ms on vs {best_off * 1e3:.2f} ms off)"
    )
    assert ops_per_second > _OPS_PER_SECOND_FLOOR, (
        f"aggregated tier sustained only {ops_per_second:,.0f} tiny-file "
        f"ops/s (floor {_OPS_PER_SECOND_FLOOR:,.0f}/s)"
    )
