"""E4 — §V-A: the slow-disk culling campaign.

"we replaced around 1,500 of 20,160 fully functioning, but slower, disks.
After deployment, the same process was repeated at the file system level
and we eliminated approximately another 500 disks ...  the initial
requirement for 5% variability among RAID groups was determined to be
prohibitive and was contractually adjusted to 7.5%."

Runs the full multi-round campaign on the 20,160-drive build and checks
every one of those quantities.
"""

import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.ops.culling import CullingCampaign


def test_e4_disk_culling(benchmark, report):
    def run():
        system = build_spider2(seed=2014, build_clients=False)
        campaign = CullingCampaign(system, threshold=0.05)
        return campaign.run_full_campaign(), system

    result, system = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (r.level, r.round_index, r.replaced,
         f"{r.metrics_before.worst_intra_ssu_spread:.1%}",
         f"{r.metrics_after.worst_intra_ssu_spread:.1%}",
         f"{r.metrics_after.global_spread:.1%}")
        for r in result.rounds
    ]
    final = result.final_metrics()
    text = render_table(
        ["level", "round", "replaced", "intra-SSU before", "intra-SSU after",
         "global after"],
        rows, title="Culling rounds (paper: §V-A)")
    text += "\n\n" + render_kv([
        ("block-level replacements", f"{result.replaced_at('block')} "
                                     f"(paper: ~1,500)"),
        ("fs-level replacements", f"{result.replaced_at('fs')} "
                                  f"(paper: ~500)"),
        ("drives total", system.spec.n_disks),
        ("final intra-SSU spread", f"{final.worst_intra_ssu_spread:.1%}"),
        ("final global spread", f"{final.global_spread:.1%}"),
        ("within 5% target?", final.within(0.05)),
        ("within 7.5% operational threshold?", final.within(0.075)),
    ])
    report("E4_disk_culling", text)

    assert 1200 <= result.replaced_at("block") <= 1800
    assert 300 <= result.replaced_at("fs") <= 700
    assert sum(1 for r in result.rounds if r.level == "block") >= 2
    # The contractual story: 7.5% holds; strict 5% may not be attributable
    # to drives and is what forced the adjustment.
    assert final.within(0.075)
