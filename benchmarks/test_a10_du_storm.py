"""A10 — Lesson 19 quantified: what a client `du` does to everyone else.

"du imposes a heavy load on the Lustre MDS when run at this scale.
Therefore we developed the LustreDU tool."

Queueing replay of the MDS: an interactive user population's metadata
latency quiet vs during a 500k-file `du` storm — versus the LustreDU
alternative, whose daily server-side sweep never enters the client RPC
queue at all (E13 measures its cost directly).
"""

import pytest

from repro.analysis.mds_latency import measure_du_storm
from repro.analysis.reporting import render_table


def test_a10_du_storm_latency(benchmark, report):
    result = benchmark.pedantic(lambda: measure_du_storm(seed=3),
                                rounds=1, iterations=1)

    text = render_table(["metric", "value"], result.rows(),
                        title="MDS latency under a du storm (Lesson 19)")
    report("A10_du_storm", text)

    # Quiet interactive metadata is sub-millisecond.
    assert result.quiet_p99 < 0.005
    # During the storm, interactive tail latency explodes to seconds —
    # the pathology that got `du` banned and LustreDU written.
    assert result.p99_inflation > 100.0
    assert result.storm_p99 > 0.5
    # The du itself takes tens of seconds of MDS time for 500k files.
    assert result.storm_duration > 20.0
