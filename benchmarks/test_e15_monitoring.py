"""E15 — §IV-A / Lesson 8: the monitoring pipeline under fault injection.

"A robust monitoring/alerting platform coupled with analysis tools reduces
cluster and file system administration complexity ...  These two features
allowed system administrators to discriminate between hardware events and
Lustre software issues."

Injects three fault classes into the full system with live monitoring —
a controller failure, a flapping IB cable, and a pure Lustre software
fault — and measures detection latency and the health checker's
hardware/software discrimination.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.monitoring.checks import CheckScheduler, CheckState
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.health import EventKind, HealthEvent, LustreHealthChecker
from repro.monitoring.ibmon import IbMonitor
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine
from repro.units import HOUR


def _run_scenario(system):
    engine = Engine()
    db = MetricsDb()
    DdnTool(system, db, poll_interval=300.0).attach(engine)
    sched = CheckScheduler(engine)
    health = LustreHealthChecker()

    couplet = system.ssus[3].couplet
    sched.register(
        "couplet3",
        lambda: ((CheckState.CRITICAL, "controller down")
                 if not all(c.online for c in couplet.controllers)
                 else (CheckState.OK, "ok")),
        interval=60.0, confirm_after=2)

    cable_host = system.osses[20].name
    ibmon = IbMonitor(system.fabric, db, symbol_error_rate_threshold=0.5)
    ibmon.register_checks(sched, interval=60.0, hosts=[cable_host])

    lbug_seen = {"flag": False}
    sched.register(
        "lustre-health",
        lambda: ((CheckState.CRITICAL, "LBUG") if lbug_seen["flag"]
                 else (CheckState.OK, "ok")),
        interval=60.0, confirm_after=1)

    faults = {
        "controller failover": 1 * HOUR,
        "flapping cable": 2 * HOUR,
        "software LBUG": 3 * HOUR + 30.0,
    }
    engine.call_at(faults["controller failover"], lambda: (
        couplet.fail_controller(0),
        health.ingest(HealthEvent(engine.now, EventKind.CONTROLLER_FAILOVER,
                                  "ssu03.couplet")),
        health.ingest(HealthEvent(engine.now + 20, EventKind.RPC_TIMEOUT,
                                  "ssu03"))))

    def _flap():
        system.fabric.degrade_cable(cable_host, 0.6, symbol_errors=5000)
    engine.call_at(faults["flapping cable"], lambda: (
        _flap(),
        health.ingest(HealthEvent(engine.now, EventKind.CABLE_ERRORS,
                                  cable_host))))
    engine.every(120.0, _flap, start=faults["flapping cable"] + 120.0)

    def _lbug():
        lbug_seen["flag"] = True
        health.ingest(HealthEvent(engine.now, EventKind.LBUG, "mds-atlas1"))
    engine.call_at(faults["software LBUG"], _lbug)

    engine.run(until=4 * HOUR)
    latencies = {
        "controller failover": sched.detection_latency(
            "couplet3", faults["controller failover"]),
        "flapping cable": sched.detection_latency(
            f"ib:{cable_host}", faults["flapping cable"]),
        "software LBUG": sched.detection_latency(
            "lustre-health", faults["software LBUG"]),
    }
    return latencies, health.classify_counts(), sched


def test_e15_monitoring_pipeline(benchmark, spider2_culled, report):
    latencies, counts, sched = benchmark.pedantic(
        lambda: _run_scenario(spider2_culled), rounds=1, iterations=1)

    rows = [(fault, f"{lat:.0f} s" if lat is not None else "MISSED")
            for fault, lat in latencies.items()]
    text = render_table(["injected fault", "detection latency"], rows,
                        title="Fault detection (paper: §IV-A, Lesson 8)")
    text += "\n\n" + render_table(
        ["incident class", "count"], sorted(counts.items()),
        title="Health-checker discrimination")
    report("E15_monitoring", text)

    # Every fault detected, within a few check intervals.
    for fault, lat in latencies.items():
        assert lat is not None, f"{fault} went undetected"
        assert lat <= 600.0
    # Hardware vs software discrimination: the failover (with its RPC
    # symptom) classifies as hardware-rooted, the LBUG as software.
    assert counts["hardware-rooted"] >= 1
    assert counts["software"] >= 1
