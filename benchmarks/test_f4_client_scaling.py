"""F4 — Figure 4: IOR write bandwidth vs number of I/O writer processes.

"a single namespace can scale almost linearly up to 6,000 clients and then
provide relatively steady performance" (§V-C).  1 MiB transfers,
scheduler (random) placement, one pre-upgrade namespace: the knee sits
near 6,000 processes and the plateau near 320 GB/s.
"""

import pytest

from repro.analysis.reporting import render_series
from repro.iobench.ior import client_scaling
from repro.units import GB

COUNTS = (96, 384, 1008, 2016, 4032, 6048, 8064, 12096, 16128)


def test_f4_client_scaling(benchmark, spider2, report):
    results = benchmark.pedantic(
        lambda: client_scaling(spider2, process_counts=COUNTS, ppn=16),
        rounds=1, iterations=1)

    points = [(r.n_processes, r.aggregate_bw / GB) for r in results]
    text = render_series(
        "processes", "write GB/s", points,
        title=("IOR file-per-process write vs process count, 1 MiB "
               "transfers, one namespace (paper: Fig. 4)"))
    report("F4_client_scaling", text)

    by_n = {r.n_processes: r.aggregate_bw for r in results}
    # Linear region: constant per-process rate from 96 through 4032.
    assert by_n[4032] / 4032 == pytest.approx(by_n[96] / 96, rel=0.06)
    # Knee near 6,000: at 6048 the namespace is >90% of its plateau.
    plateau = by_n[16128]
    assert by_n[6048] > 0.90 * plateau
    assert by_n[4032] < 0.70 * plateau
    # Plateau at the pre-upgrade namespace budget (~320 GB/s).
    assert plateau == pytest.approx(320 * GB, rel=0.03)
    # "relatively steady performance" beyond the knee.
    assert by_n[12096] == pytest.approx(by_n[16128], rel=0.05)
