"""Perf gate: congestion-aware routing must ride along for (almost) free.

PR 10 threads a :class:`~repro.network.routing.BackpressureController`
through the facility scheduler's allocation loop: every round feeds the
controller the backbone utilization it delivered and lets it debounce a
degraded-mode flip.  That wiring sits on the scheduler's hottest path,
so this bench re-runs the ``BENCH_sched`` 1,000+-job day twice — bare
vs. with the controller attached — and pins three regression gates (see
``docs/PERFORMANCE.md``):

* an overhead ceiling — the controller costs ≤ 10% wall clock;
* the same jobs/s floor the bare scheduler must clear, now demanded of
  the *monitored* run, so routing can never eat the delta-solver's win;
* bit-identity — with QoS disabled the degraded cap has no component to
  bind, so both runs must produce ``==``-equal results (the controller
  observes, it must not perturb).

The record also archives the A19 storm headline (static collapse vs.
flowlet recovery on the scarce-row mini system) so ``BENCH_routing.json``
carries both halves of the routing contract: the win and its price.
Results land in ``BENCH_routing.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from dataclasses import replace

from repro.core.placement import PlacementSpec
from repro.core.spider import SpiderSpec, SpiderSystem
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.hardware.ssu import SsuSpec
from repro.lustre.oss import OssSpec
from repro.network.infiniband import FabricSpec
from repro.network.routing import BackpressureController, LinkStatsFeed
from repro.network.storm import run_storm_study
from repro.network.torus import TorusSpec
from repro.sched import (
    BACKBONE_COMPONENT,
    FacilityScheduler,
    JobMix,
    QosPolicy,
    generate_jobs,
)
from repro.units import GB, HOUR

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_routing.json"

#: same dense job day as ``test_sched_overhead.py`` — the overhead gate
#: is only meaningful against the workload the baseline floor is pinned
#: on.
_RATE_SCALE = 1.0
_WINDOW = 44 * HOUR
_MIN_JOBS = 1_000
_SEED = 2014

#: paired trials; more than BENCH_sched's best-of-5 because the gate
#: here is a *ratio* of two small wall clocks, so the statistic is the
#: median over per-pair ratios (see :func:`_timed_arms`) and the median
#: of nine is stable where a best-of-N difference is not.
_TRIALS = 9

#: ceiling on the controller's wall-clock tax over the bare scheduler.
_LIMIT_FRACTION = 0.10

#: the BENCH_sched floor, demanded of the monitored run: attaching the
#: controller must not push throughput below what the bare scheduler
#: guarantees.
_JOBS_PER_S_FLOOR = 1_500.0


def _mini_system() -> SpiderSystem:
    spec = SpiderSpec(
        name="mini",
        n_ssus=4,
        ssu=SsuSpec(
            n_enclosures=10,
            disks_per_enclosure=7,
            disk=DiskSpec(),
            controller=ControllerSpec(
                block_bw_cap=4.0 * GB,
                fs_bw_cap=2.4 * GB,
                upgraded_fs_bw_cap=3.8 * GB,
            ),
        ),
        n_namespaces=2,
        oss=OssSpec(node_bw_cap=5.0 * GB, n_osts=7),
        fabric=FabricSpec(n_leaf_switches=4, n_core_switches=2),
        torus=TorusSpec(dims=(5, 4, 6)),
        placement=PlacementSpec(n_modules=6, routers_per_module=4,
                                n_leaves=4),
        n_compute_nodes=128,
    )
    return SpiderSystem(spec, seed=_SEED, build_clients=False)


def _storm_mini_spec() -> SpiderSpec:
    """The mini system in the scarce-row-bandwidth regime the A19 study
    (and the ``spider-repro storm`` CLI) runs in."""
    base = _mini_system().spec
    return replace(base, torus=replace(base.torus, link_bw=0.5 * GB))


def _one_run(system, jobs, *, monitored: bool):
    """One scheduler day; returns ``(wall_s, result)``.  A fresh
    controller per run — streak state must not leak across trials."""
    backpressure = (BackpressureController(LinkStatsFeed(),
                                           (BACKBONE_COMPONENT,))
                    if monitored else None)
    sched = FacilityScheduler(system, jobs,
                              policy=QosPolicy.disabled(), seed=_SEED,
                              backpressure=backpressure)
    t0 = time.perf_counter()
    result = sched.run()
    return time.perf_counter() - t0, result


def _timed_arms():
    """Paired trials, back to back, so each ratio samples one moment of
    machine state.  The gate statistic is the *median* of the per-pair
    wall-clock ratios: an arm-wide minimum taken across the whole run
    soaks up warm-up and frequency-scaling drift as fake overhead, while
    a paired median is centered on the intrinsic cost ratio and a single
    loaded pair cannot move it."""
    system = _mini_system()
    jobs = generate_jobs(
        JobMix().scaled(_RATE_SCALE),
        duration=_WINDOW,
        seed=_SEED,
        reference_bandwidth=system.aggregate_bandwidth(fs_level=True),
    )
    assert len(jobs) >= _MIN_JOBS
    _one_run(system, jobs, monitored=True)  # warm-up, untimed
    ratios = []
    bare_walls, monitored_walls = [], []
    bare_result = monitored_result = None
    for _ in range(_TRIALS):
        bare_wall, bare_result = _one_run(system, jobs, monitored=False)
        monitored_wall, monitored_result = _one_run(system, jobs,
                                                    monitored=True)
        bare_walls.append(bare_wall)
        monitored_walls.append(monitored_wall)
        ratios.append(monitored_wall / bare_wall)
    return (statistics.median(ratios),
            min(bare_walls), bare_result,
            min(monitored_walls), monitored_result)


def test_routing_backpressure_overhead_within_budget(report):
    (ratio, bare_wall, bare_result,
     monitored_wall, monitored_result) = _timed_arms()

    overhead = ratio - 1.0
    jobs_per_s = monitored_result.n_jobs / monitored_wall

    # The storm headline rides in the record: the same quick mini study
    # the routing tests pin (scarce-row regime, seed 11), so the JSON
    # carries the win the overhead above pays for.
    study = run_storm_study(
        lambda: SpiderSystem(_storm_mini_spec(), seed=7),
        seed=11, duration=3600.0, storm_start=600.0, storm_end=3000.0)

    payload = {
        "benchmark": "routing_overhead",
        "workload": (f"FacilityScheduler, {monitored_result.n_jobs} jobs "
                     f"over {_WINDOW / HOUR:.0f} h on mini, bare vs "
                     f"backpressure-monitored"),
        "n_jobs": monitored_result.n_jobs,
        "trials": _TRIALS,
        "bare_wall_s": bare_wall,
        "monitored_wall_s": monitored_wall,
        "overhead_fraction": overhead,
        "limit_fraction": _LIMIT_FRACTION,
        "jobs_per_second": jobs_per_s,
        "jobs_per_second_floor": _JOBS_PER_S_FLOOR,
        "results_identical": monitored_result == bare_result,
        "storm": {
            "study": "A19 mini, scarce-row regime (0.5 GB/s links)",
            "static_p99_s": study.static.latency_p99,
            "flowlet_p99_s": study.flowlet.latency_p99,
            "recovery_factor": study.recovery_factor,
            "rehashes": study.flowlet.rehashes,
            "backpressure_engagements": study.flowlet.backpressure_engagements,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_routing", "\n".join([
        f"jobs scheduled: {monitored_result.n_jobs} "
        f"(finished {monitored_result.n_finished})",
        f"bare wall: {bare_wall:.2f} s, monitored wall: "
        f"{monitored_wall:.2f} s (best of {_TRIALS} paired trials)",
        f"overhead: {overhead:+.1%} median of {_TRIALS} paired ratios "
        f"(limit {_LIMIT_FRACTION:.0%})",
        f"throughput monitored: {jobs_per_s:.0f} jobs/s "
        f"(floor {_JOBS_PER_S_FLOOR:.0f})",
        f"storm headline: static p99 {study.static.latency_p99:.2f} s vs "
        f"flowlet {study.flowlet.latency_p99:.2f} s "
        f"({study.recovery_factor:.1f}x recovery)",
    ]))

    assert monitored_result == bare_result, (
        "the backpressure controller perturbed scheduling: with QoS "
        "disabled the degraded cap binds nothing, so the monitored run "
        "must be bit-identical to the bare run")
    assert overhead <= _LIMIT_FRACTION, (
        f"backpressure monitoring cost {overhead:.1%} wall clock over "
        f"the bare scheduler (limit {_LIMIT_FRACTION:.0%})")
    assert jobs_per_s >= _JOBS_PER_S_FLOOR, (
        f"monitored throughput {jobs_per_s:.0f} jobs/s fell below the "
        f"{_JOBS_PER_S_FLOOR:.0f} jobs/s floor the bare scheduler is "
        f"held to")
    assert study.recovery_factor >= 10.0, (
        f"storm recovery {study.recovery_factor:.1f}x fell below the "
        f"10x headline the routing layer is sold on")
