"""A1 — §II quantified: checkpoint bursts vs analytics latency.

The paper's data-centric tradeoff is stated qualitatively: "competing
workloads can significantly impact ... the responsiveness of interactive
analysis workloads" and "write and read streams from different computing
systems often interfere because of the difference in data
production/consumption rates".  This ablation measures it: read-latency
percentiles for an interactive analytics stream alone (machine-exclusive
scratch) versus sharing the station with a bursty checkpoint writer
(data-centric), via exact FIFO queueing replay.
"""

import pytest

from repro.analysis.interference import measure_interference, measure_placement_latency
from repro.analysis.reporting import render_table


def test_a1_mixed_workload_interference(benchmark, report):
    result = benchmark.pedantic(lambda: measure_interference(seed=5),
                                rounds=1, iterations=1)

    text = render_table(
        ["metric", "value"], result.rows(),
        title="Checkpoint-vs-analytics interference (paper: §II, Lesson 1)")

    placement = measure_placement_latency(seed=9)
    text += "\n\n" + render_table(
        ["metric", "value"], placement.rows(),
        title="Placement protects latency too (the §VI-A flip side)")
    report("A1_interference", text)

    # The paper's claim, quantified: tail latency of the latency-bound
    # analytics stream inflates by orders of magnitude during bursts...
    assert result.p99_inflation > 10.0
    assert result.mean_inflation > 2.0
    # ...while the median (between bursts) barely moves — interference is
    # bursty, matching the "periodic and bursty" workload structure.
    assert result.mixed_read_p50 < 2.0 * result.alone_read_p50
    # The bandwidth-bound checkpoint pays comparatively little.
    assert result.checkpoint_slowdown < 1.5
    # Spreading the burst across stations shields the analytics tail.
    assert placement.spread_gain > 5.0
