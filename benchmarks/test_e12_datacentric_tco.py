"""E12 — §II / §VII: data-centric vs machine-exclusive economics.

"machine-exclusive file systems can easily exceed 10% of the total
acquisition cost" / "We typically express a capacity target ... of no
less than 30x the aggregate system memory of all connected systems.  For
the current OLCF systems, total memory ... is approximately 770 TB.  With
more than 30 PB (formatted), the Spider II capacity not only exceeds this
target, but provides some margin for accommodating new systems with
minimal cost."

Regenerates the tradeoff table: storage cost, workflow data movement,
availability under a machine outage, and the marginal cost of adding a
new resource.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.core.center import (
    ComputeResource,
    HpcCenter,
    PfsModel,
    checkpoint_analysis_workflow,
)
from repro.units import PB, TB, fmt_size


def test_e12_datacentric_vs_exclusive(benchmark, report):
    def build():
        dc = HpcCenter(model=PfsModel.DATA_CENTRIC)
        ex = HpcCenter(model=PfsModel.MACHINE_EXCLUSIVE)
        return dc, ex

    dc, ex = benchmark(build)
    wf = checkpoint_analysis_workflow(checkpoint_bytes=450 * TB,
                                      reduced_bytes=40 * TB)
    newbox = ComputeResource("new-analysis", memory_bytes=40 * TB,
                             acquisition_cost=8.0)

    rows = [
        ("storage acquisition cost (normalized)",
         f"{dc.storage_cost():.1f}", f"{ex.storage_cost():.1f}"),
        ("workflow data moved between file systems",
         fmt_size(dc.workflow_movement_bytes(wf)),
         fmt_size(ex.workflow_movement_bytes(wf))),
        ("data reachable during a Titan outage",
         f"{dc.data_availability('titan'):.0%}",
         f"{ex.data_availability('titan'):.0%}"),
        ("marginal storage cost of a new 40 TB cluster",
         f"{dc.cost_of_adding_resource(newbox):.2f}",
         f"{ex.cost_of_adding_resource(newbox):.2f}"),
        ("30x capacity target (770 TB memory)",
         fmt_size(dc.capacity_target_bytes()), "n/a"),
        ("Spider II capacity vs target",
         f"{fmt_size(dc.pfs_capacity_bytes)} "
         f"({'meets' if dc.meets_capacity_target() else 'misses'})", "n/a"),
    ]
    text = render_table(["metric", "data-centric", "machine-exclusive"],
                        rows, title="PFS model tradeoffs (paper: §II, §VII)")
    report("E12_datacentric_tco", text)

    # The §II cost claim and its consequences.
    assert ex.storage_cost() > dc.storage_cost()
    assert dc.workflow_movement_bytes(wf) == 0
    assert ex.workflow_movement_bytes(wf) == 490 * TB
    assert dc.data_availability("titan") == 1.0
    assert ex.data_availability("titan") < 0.1
    # 770 TB x 30 = 23.1 PB < 32 PB, with margin for a new machine.
    assert dc.capacity_target_bytes() == pytest.approx(23.1 * PB)
    assert dc.meets_capacity_target()
    assert dc.cost_of_adding_resource(newbox) == 0.0
    assert ex.cost_of_adding_resource(newbox) > 0.0
