"""A11 — Lesson 9 quantified: why candidate releases are tested on Titan.

"These tests identify edge cases and problems that would not manifest
themselves otherwise."

The same release candidate (identical latent-defect population) is run
through a vendor-lab campaign (256 clients), a mid-size test system
(2,048), and a Titan-scale campaign (18,688); the escapes tell the story.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.ops.release_testing import CandidateRelease, ScaleTestCampaign

SCALES = (256, 2_048, 18_688)


def test_a11_scale_testing(benchmark, report):
    def run():
        release = CandidateRelease(seed=2, n_defects=100)
        return release, {
            scale: ScaleTestCampaign(scale, n_runs=8, seed=scale).run(release)
            for scale in SCALES
        }

    release, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (f"{scale:,}", o.caught, o.escaped, o.escaped_large_scale,
         f"{o.catch_rate:.0%}")
        for scale, o in outcomes.items()
    ]
    text = render_table(
        ["test scale (clients)", "caught", "escaped",
         "escaped needing larger scale", "catch rate"],
        rows, title="Release-candidate testing at scale (paper: Lesson 9)")
    text += (f"\n\nrelease: {release.name}, {release.n_defects} latent "
             f"defects; {release.defects_above(256)} only manifest above "
             f"256 clients, {release.defects_above(2_048)} above 2,048")
    report("A11_scale_testing", text)

    small, mid, titan = (outcomes[s] for s in SCALES)
    # The defect tail is real: a material fraction needs >256 clients,
    # and some only manifest above 2,048.
    assert release.defects_above(256) >= 10
    assert release.defects_above(2_048) >= 3
    # Catch rate is monotone in scale; Titan-scale testing catches what
    # the lab never can.
    assert small.catch_rate < mid.catch_rate < titan.catch_rate
    assert titan.escaped_large_scale < mid.escaped_large_scale
    assert mid.escaped_large_scale < small.escaped_large_scale
    # Titan-scale escapes are exactly the defects above its client count.
    assert titan.escaped_large_scale == release.defects_above(18_688)
