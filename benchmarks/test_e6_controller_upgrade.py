"""E6 — §V-C: the controller CPU/memory upgrade.

"we observed 510 GB/s of aggregate sequential write performance out of a
single Spider II file system namespace, versus 320 GB/s before the
upgrade.  IOR was used for this test in the file-per-process mode with
1 MB I/O transfer sizes.  The peak performance was obtained using only
1,008 clients against 1,008 OSTs.  The clients were optimally placed."

Reproduced on the culled (production-state) build: the same IOR hero run
before and after `upgrade_controllers()`.
"""

import copy

import pytest

from repro.analysis.reporting import render_kv
from repro.core.spider import build_spider2
from repro.iobench.ior import IorRun
from repro.ops.culling import CullingCampaign
from repro.units import GB


def test_e6_controller_upgrade(benchmark, report):
    def run():
        system = build_spider2(seed=2014)
        CullingCampaign(system).run_full_campaign()
        pre = IorRun(system, n_processes=1008, ppn=1,
                     placement="optimal").run()
        system.upgrade_controllers()
        post = IorRun(system, n_processes=1008, ppn=1,
                      placement="optimal").run()
        # Random (scheduler) placement comparison at the same scale.
        random_post = IorRun(system, n_processes=1008, ppn=1,
                             placement="random").run()
        return pre, post, random_post

    pre, post, random_post = benchmark.pedantic(run, rounds=1, iterations=1)

    text = render_kv([
        ("configuration", "1,008 processes vs 1,008 OSTs, 1 MiB transfers, "
                          "file-per-process"),
        ("pre-upgrade, optimal placement",
         f"{pre.aggregate_bw / GB:.0f} GB/s (paper: 320 GB/s)"),
        ("post-upgrade, optimal placement",
         f"{post.aggregate_bw / GB:.0f} GB/s (paper: 510 GB/s)"),
        ("post-upgrade, scheduler placement",
         f"{random_post.aggregate_bw / GB:.0f} GB/s"),
        ("upgrade speedup", f"{post.aggregate_bw / pre.aggregate_bw:.2f}x "
                            f"(paper: 1.59x)"),
    ], title="Single-namespace hero runs (paper: §V-C)")
    report("E6_controller_upgrade", text)

    assert pre.aggregate_bw == pytest.approx(320 * GB, rel=0.03)
    assert post.aggregate_bw == pytest.approx(510 * GB, rel=0.05)
    # Optimal placement is what makes the hero number reachable.
    assert random_post.aggregate_bw < post.aggregate_bw
