"""A7 — the Spider I → Spider II generational arc (§I, §IV-E, §V).

The paper's narrative spans two procurements; this bench builds both
systems side by side and checks every stated generational delta:
capacity (10 → 32 PB), bandwidth (240 GB/s → >1 TB/s), namespaces
(4 → 2), and the enclosure-geometry fix the 2010 incident forced
(2 members per shelf → 1).
"""

import pytest

from repro.analysis.reporting import render_table
from repro.core.spider import build_spider1, build_spider2
from repro.units import GB, PB, fmt_bandwidth, fmt_size


def test_a7_spider_generations(benchmark, report):
    def build():
        return (build_spider1(build_clients=False),
                build_spider2(build_clients=False))

    s1, s2 = benchmark.pedantic(build, rounds=1, iterations=1)

    def worst_enclosure_loss(system):
        return max(ssu.enclosures.max_members_lost_per_enclosure()
                   for ssu in system.ssus)

    rows = [
        ("couplets / SSUs", s1.spec.n_ssus, s2.spec.n_ssus),
        ("disks", f"{s1.spec.n_disks:,}", f"{s2.spec.n_disks:,}"),
        ("disk size", fmt_size(s1.spec.ssu.disk.capacity_bytes),
         fmt_size(s2.spec.ssu.disk.capacity_bytes)),
        ("OSTs", s1.spec.n_osts, s2.spec.n_osts),
        ("capacity", fmt_size(s1.total_capacity_bytes()),
         fmt_size(s2.total_capacity_bytes())),
        ("delivered bandwidth",
         fmt_bandwidth(s1.aggregate_bandwidth(fs_level=True)),
         fmt_bandwidth(s2.aggregate_bandwidth(fs_level=False))),
        ("namespaces", s1.spec.n_namespaces, s2.spec.n_namespaces),
        ("enclosures per couplet", s1.spec.ssu.n_enclosures,
         s2.spec.ssu.n_enclosures),
        ("RAID members lost per shelf outage", worst_enclosure_loss(s1),
         worst_enclosure_loss(s2)),
    ]
    text = render_table(["metric", "Spider I (2008)", "Spider II (2013)"],
                        rows, title="Two generations of Spider (paper: §I, §V)")
    report("A7_spider_generations", text)

    # Paper-stated generational facts.
    assert s1.total_capacity_bytes() == pytest.approx(10.75 * PB, rel=0.01)
    assert s2.total_capacity_bytes() == pytest.approx(32.26 * PB, rel=0.01)
    assert s1.aggregate_bandwidth(fs_level=True) == pytest.approx(
        240 * GB, rel=0.05)
    assert s2.aggregate_bandwidth(fs_level=False) > 1000 * GB
    assert (s1.spec.n_namespaces, s2.spec.n_namespaces) == (4, 2)
    # Lesson 11 applied: the member-per-shelf exposure halves.
    assert worst_enclosure_loss(s1) == 2
    assert worst_enclosure_loss(s2) == 1
