"""E14 — §III-B/C: the procurement benchmark suite and evaluation.

"By comparing these two benchmark results [block vs fs], we can measure
the file system overhead ...  Ultimately, OLCF chose to purchase a block
storage model."

Runs the acceptance suite against a delivered SSU, derives the fs-level
overhead, checks SOW floors, and reruns the weighted procurement
evaluation that selected the block-storage response.
"""

import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import SPIDER2, SpiderSystem
from repro.hardware.ssu import SsuSpec
from repro.iobench.suite import AcceptanceSuite
from repro.ops.procurement import (
    ProcurementEvaluation,
    ResponseModel,
    Rfp,
    VendorProposal,
)
from repro.units import GB


def test_e14_benchmark_suite_and_evaluation(benchmark, report):
    system = SpiderSystem(SPIDER2, seed=7, build_clients=False)
    suite = AcceptanceSuite(system)
    suite_report = benchmark.pedantic(lambda: suite.run_ssu(0),
                                      rounds=1, iterations=1)

    rfp = Rfp(sequential_floor=1000 * GB, random_floor=240 * GB)
    checks = suite.check_sow_targets(
        suite_report,
        seq_floor=rfp.sequential_floor / 36,
        random_floor=rfp.random_floor / 36)

    proposals = [
        VendorProposal(vendor="block-model", model=ResponseModel.BLOCK_STORAGE,
                       ssu=SsuSpec(), n_ssus=36, price_per_ssu=0.75,
                       integration_cost=2.0, annual_service_cost=0.5,
                       delivery_months=10, past_performance=0.85),
        VendorProposal(vendor="appliance-model", model=ResponseModel.APPLIANCE,
                       ssu=SsuSpec(), n_ssus=36, price_per_ssu=1.0,
                       integration_cost=1.0, annual_service_cost=0.7,
                       delivery_months=12, past_performance=0.8),
    ]
    evaluation = ProcurementEvaluation(rfp, buyer_integration_expertise=0.85)
    winner, cards = evaluation.select(proposals)

    text = render_table(["metric", "value"], suite_report.rows(),
                        title="Acceptance suite, one SSU (paper: §III-B)")
    text += "\n\n" + render_kv(
        sorted(checks.items()), title="SOW floor checks (per-SSU share)")
    text += "\n\n" + render_table(
        ["vendor", "compliant", *sorted(cards[0].scores), "total"],
        [c.row() for c in cards],
        title="Weighted evaluation (paper: §III-C, Lesson 5)")
    text += f"\nwinner: {winner.vendor}"
    report("E14_benchmark_suite", text)

    # The block-vs-fs comparison shows a real software overhead.
    assert 0.05 < suite_report.fs_overhead < 0.25
    # 36 SSUs of this configuration meet both SOW floors.
    assert checks["sequential"] and checks["random"]
    assert suite_report.block_seq_bw * 36 > 1000 * GB
    # The block-storage model wins for the OLCF buyer profile.
    assert winner.vendor == "block-model"
