"""A8 — Lesson 7 quantified: diskless provisioning and MTTR.

"Build PFS clusters using diskless nodes to increase reliability and
reduce complexity and cost.  Build repeatable, reliable processes that
rely on configuration and change management ...  This structure can
positively impact mean time to repair (MTTR)."

Boots the full 288-OSS fleet through the GeDI pipeline (with tftp
contention), pushes a configuration update and converges, and compares
diskless vs diskful MTTR.
"""

import pytest

from repro.analysis.reporting import render_kv
from repro.ops.provisioning import GediCluster, NodeState, diskful_mttr, diskless_mttr
from repro.sim.engine import Engine
from repro.units import MINUTE, fmt_duration


def test_a8_provisioning(benchmark, report):
    def run():
        engine = Engine()
        cluster = GediCluster(
            engine, [f"oss{i:03d}" for i in range(288)],
            tftp_concurrency=32)
        cluster.boot_all()
        engine.run()
        first_boot = max(n.boot_finished_at for n in cluster.nodes.values())
        # Push an image update (e.g. a Lustre version bump) and converge.
        cluster.push_image_update()
        stale = len(cluster.stale_nodes())
        t0 = engine.now
        cluster.converge()
        engine.run()
        reboot = max(n.boot_finished_at for n in cluster.nodes.values()) - t0
        return cluster, first_boot, stale, reboot

    cluster, first_boot, stale, reboot = benchmark.pedantic(
        run, rounds=1, iterations=1)

    mttr_dl = diskless_mttr()
    mttr_df = diskful_mttr()
    text = render_kv([
        ("OSS fleet", len(cluster.nodes)),
        ("cold boot, whole fleet", fmt_duration(first_boot)),
        ("nodes stale after image push", stale),
        ("convergence reboot, whole fleet", fmt_duration(reboot)),
        ("single-node MTTR, diskless", fmt_duration(mttr_dl)),
        ("single-node MTTR, diskful", fmt_duration(mttr_df)),
        ("MTTR advantage", f"{mttr_df / mttr_dl:.1f}x"),
    ], title="Diskless provisioning (paper: Lesson 7)")
    report("A8_provisioning", text)

    # Every node reaches service with its services in dependency order.
    assert len(cluster.in_service()) == 288
    for node in cluster.nodes.values():
        assert node.state is NodeState.IN_SERVICE
        assert node.services_up == ["openibd", "srp_daemon", "lustre"]
    # The whole fleet cold-boots in minutes, not hours.
    assert first_boot < 30 * MINUTE
    # An image push converges the entire fleet by reboot alone.
    assert stale == 288
    assert cluster.stale_nodes() == []
    # The Lesson 7 MTTR claim.
    assert mttr_df > 5 * mttr_dl
