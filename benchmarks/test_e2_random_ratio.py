"""E2 — §III-A: the 20-25% random/sequential disk ratio and the 240 GB/s
random floor it implies.

"Our earlier tests showed that a single SATA or near line SAS hard disk
drive can achieve 20-25% of its peak performance under random I/O
workloads (with 1 MB I/O block sizes).  This drove the requirement for
random I/O workloads of 240 GB/s at the file system level."

Measured with the fair-lio sweep over a sample of drives.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.hardware.disk import DiskPopulation
from repro.iobench.fairlio import DiskTarget, FairLioSweep, random_to_sequential_ratio
from repro.sim.rng import RngStreams
from repro.units import GB, KiB, MiB


def _measure_sample(n_disks=24, seed=2):
    pop = DiskPopulation(n_disks, rng=RngStreams(seed),
                         block_slow_fraction=0.0, fs_slow_fraction=0.0)
    sweep = FairLioSweep(request_sizes=(64 * KiB, 256 * KiB, MiB, 4 * MiB),
                         queue_depths=(1,), write_fractions=(1.0,),
                         noise_sigma=0.005)
    rng = np.random.default_rng(seed)
    ratios = []
    for i in range(n_disks):
        results = sweep.run(DiskTarget(pop.disk(i)), rng)
        ratios.append(random_to_sequential_ratio(results))
    return np.array(ratios), sweep, pop


def test_e2_random_ratio(benchmark, report):
    ratios, sweep, pop = benchmark.pedantic(_measure_sample, rounds=1,
                                            iterations=1)
    # Size-dependence table for one drive.
    rng = np.random.default_rng(0)
    results = sweep.run(DiskTarget(pop.disk(0)), rng)
    rows = []
    for size in sweep.request_sizes:
        seq = next(r for r in results if r.sequential and r.request_size == size)
        rnd = next(r for r in results
                   if not r.sequential and r.request_size == size)
        rows.append((f"{size // KiB} KiB",
                     f"{seq.bandwidth / 1e6:.0f} MB/s",
                     f"{rnd.bandwidth / 1e6:.0f} MB/s",
                     f"{rnd.bandwidth / seq.bandwidth:.2f}"))
    text = render_table(["request", "sequential", "random", "ratio"], rows,
                        title="Single NL-SAS drive, fair-lio sweep (qd=1)")
    text += "\n\n" + render_kv([
        ("drives sampled", len(ratios)),
        ("random/seq @1MiB, mean", f"{ratios.mean():.3f}"),
        ("random/seq @1MiB, range",
         f"{ratios.min():.3f} .. {ratios.max():.3f}"),
        ("paper band", "0.20 - 0.25"),
        ("implied random floor for a 1 TB/s system",
         f"{ratios.mean() * 1000:.0f} GB/s (paper: 240 GB/s)"),
    ])
    report("E2_random_ratio", text)

    assert 0.20 <= ratios.mean() <= 0.25
    assert (ratios > 0.18).all() and (ratios < 0.27).all()
    # The implied system-level floor lands near the SOW's 240 GB/s.
    assert ratios.mean() * 1000 * GB == pytest.approx(240 * GB, rel=0.10)
