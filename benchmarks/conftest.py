"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one figure or headline quantity from the paper
(see DESIGN.md §4 for the experiment index).  Rendered reports are printed
to the live terminal (past pytest's capture) and archived under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.spider import SpiderSystem, build_spider1, build_spider2

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def spider2() -> SpiderSystem:
    """Spider II as deployed: pre-upgrade controllers, un-culled drives."""
    return build_spider2(seed=2014)


@pytest.fixture(scope="session")
def spider2_culled() -> SpiderSystem:
    """Spider II after the §V-A culling campaign (production state)."""
    from repro.ops.culling import CullingCampaign

    system = build_spider2(seed=2014)
    CullingCampaign(system).run_full_campaign()
    return system


@pytest.fixture(scope="session")
def spider1() -> SpiderSystem:
    return build_spider1(build_clients=False)


@pytest.fixture
def report(request, capsys):
    """Print an experiment report to the terminal and archive it."""

    def _report(exp_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        banner = f"\n===== {exp_id} ====="
        with capsys.disabled():
            print(banner)
            print(text)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")

    return _report
