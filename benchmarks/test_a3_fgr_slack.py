"""A3 — ablation of the FGR zone-size (slack) parameter.

Our FGR implementation spreads clients over the routers within ``slack``
torus hops of the nearest leaf-matched router (the "zone" of §V-B).
Slack 0 is pure nearest-router (maximal locality, worst balance); large
slack is pure load balancing (best balance, degraded locality).  The
production answer is in between — this ablation sweeps it and reports
both objectives plus delivered bandwidth on a namespace-wide load.
"""

import math

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.core.path import PathBuilder, Transfer
from repro.network.lnet import FineGrainedRouting
from repro.units import GB

SLACKS = (0, 2, 4, 8, 16)


def _evaluate(system, slack, n_clients=1008):
    policy = FineGrainedRouting(system.lnet, slack=slack)
    fs = system.filesystems[next(iter(system.filesystems))]
    ns_osts = [o.index for o in fs.osts]
    clients = system.clients[::len(system.clients) // n_clients][:n_clients]
    hops = []
    for i, client in enumerate(clients):
        oss = system.oss_of_ost(ns_osts[i % len(ns_osts)])
        router = policy.select_router(client.coord, oss.leaf)
        hops.append(system.torus.distance(client.coord, router.coord))
    load = policy._load[policy._load > 0]
    imbalance = float(load.max() / load.mean()) if len(load) else 0.0

    builder = PathBuilder(system, policy=FineGrainedRouting(system.lnet,
                                                            slack=slack))
    transfers = [
        Transfer(f"w{i}", c, (ns_osts[i % len(ns_osts)],), demand=math.inf)
        for i, c in enumerate(clients)
    ]
    delivered = builder.solve(transfers).total
    return float(np.mean(hops)), imbalance, delivered


def test_a3_fgr_slack_ablation(benchmark, spider2, report):
    sweep = benchmark.pedantic(
        lambda: {s: _evaluate(spider2, s) for s in SLACKS},
        rounds=1, iterations=1)

    rows = [
        (s, f"{hops:.2f}", f"{imb:.2f}x", f"{bw / GB:.0f} GB/s")
        for s, (hops, imb, bw) in sweep.items()
    ]
    text = render_table(
        ["slack (hops)", "mean client->router hops",
         "router load imbalance (max/mean)", "delivered"],
        rows, title="FGR zone-size ablation (design choice behind §V-B)")
    report("A3_fgr_slack", text)

    hops0, imb0, bw0 = sweep[0]
    hops16, imb16, bw16 = sweep[16]
    # Slack trades locality for balance, monotonically.
    assert hops16 > hops0
    assert imb16 < imb0
    # Pure-nearest overloads individual routers and loses bandwidth; a
    # modest zone recovers the namespace budget.
    assert bw0 < sweep[4][2]
    assert sweep[4][2] == pytest.approx(320 * GB, rel=0.03)
