"""E3 — §II: the Spider I workload characterization.

"Our analysis of the I/O workloads on Spider I PFS demonstrated a mix of
60% write and 40% read I/O requests ...  a majority of I/O requests are
either small (under 16 KB) or large (multiples of 1 MB), where the
inter-arrival time and idle time distributions both follow a long-tail
distribution that can be modeled as a Pareto distribution."

Regenerates the characterization table from the calibrated center-wide
mixed workload.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.analysis.workload_stats import characterize
from repro.workloads.mixed import spider_mixed_workload


def test_e3_workload_mix(benchmark, report):
    def run():
        _wl, trace = spider_mixed_workload(duration=4 * 3600.0, seed=14)
        return characterize(trace)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(["metric", "value"], rep.rows(),
                        title="Center-wide mixed workload (paper: §II)")
    report("E3_workload_mix", text)

    # 60/40 request mix.
    assert rep.write_fraction_requests == pytest.approx(0.60, abs=0.04)
    # Bimodal sizes: small or MiB-multiple covers (almost) everything.
    assert rep.bimodal_fraction > 0.95
    assert rep.small_fraction > 0.05
    assert rep.mib_multiple_fraction > 0.3
    # Long-tailed arrival process, Pareto-compatible tail index.
    assert rep.interarrival_heavy_tailed
    assert 1.0 < rep.interarrival_alpha < 3.0
