"""E5 — §VI-A: libPIO balanced placement gains.

"Experimental results at-scale on Titan demonstrate that the I/O
performance can be improved by more than 70% on a per-job basis using
synthetic benchmarks ...  We observed substantial gains in S3D I/O
performance, up to 24% improvement in POSIX file I/O bandwidth [in a
production (noisy) environment]."

Two scenarios on the full Spider II build:

* **synthetic congested**: part of the namespace carries unbounded noise;
  the job writes 4-wide-striped files.  Lustre's lockstep striping gates
  each file at its slowest stripe, so default allocation — which keeps
  landing stripes on hot OSTs — loses most of the machine; libPIO's
  utilization-aware placement recovers it (paper: >70%).
* **S3D production**: moderate noise, single-stripe file-per-process
  output phase (paper: up to 24%).
"""

import math

import pytest

from repro.analysis.reporting import render_kv
from repro.core.path import PathBuilder, Transfer
from repro.tools.libpio import LibPio
from repro.units import GB, MiB
from repro.workloads.s3d import S3DApp


def _noise(system, fs, n_busy_ssus, streams_per_ost, demand=math.inf):
    busy_ssus = sorted({o.ssu_index for o in fs.osts})[:n_busy_ssus]
    busy_osts = [o.index for o in fs.osts if o.ssu_index in busy_ssus]
    return busy_osts, [
        Transfer(f"noise{i}", system.clients[6000 + i % 4000], (ost,),
                 demand=demand)
        for i, ost in enumerate(busy_osts * streams_per_ost)
    ]


def _job_bandwidth(system, transfers, noise, *, lockstep=False):
    builder = PathBuilder(system)
    result = builder.solve(noise + transfers)
    rates = builder.transfer_rates(result, noise + transfers,
                                   lockstep=lockstep)
    return sum(v for k, v in rates.items() if not k.startswith("noise"))


def _synthetic_scenario(system):
    """4-wide-striped synthetic job under heavy partial congestion."""
    fs_name = next(iter(system.filesystems))
    fs = system.filesystems[fs_name]
    busy_osts, noise = _noise(system, fs, n_busy_ssus=6, streams_per_ost=3)
    clients = system.clients[:96]
    ns_osts = [o.index for o in fs.osts]

    # Default allocation scatters a file's stripes across the namespace
    # (Lustre's QOS round robin), so most wide-striped files touch at
    # least one hot OST.
    naive_transfers = [
        Transfer(f"job{i}", c,
                 tuple(ns_osts[(4 * i + s * 17) % len(ns_osts)]
                       for s in range(4)),
                 demand=1.2 * GB)
        for i, c in enumerate(clients)
    ]
    naive = _job_bandwidth(system, naive_transfers, noise, lockstep=True)

    pio = LibPio(system, fs_name)
    pio.observe_external_load({o: 4.0 for o in busy_osts})
    pio_transfers = [
        Transfer(f"job{i}", c, pio.suggest(4), demand=1.2 * GB)
        for i, c in enumerate(clients)
    ]
    balanced = _job_bandwidth(system, pio_transfers, noise, lockstep=True)
    return naive, balanced


def _s3d_scenario(system):
    """Single-stripe S3D output phase under production-grade noise."""
    fs_name = list(system.filesystems)[1]
    fs = system.filesystems[fs_name]
    busy_osts, noise = _noise(system, fs, n_busy_ssus=5, streams_per_ost=2)
    app = S3DApp(n_ranks=1024, bytes_per_rank=256 * MiB, ranks_per_node=8)
    base = fs.osts[0].index

    def rr_selector(rank, n_osts):
        return (base + rank % len(fs.osts),)

    default = _job_bandwidth(
        system,
        app.output_transfers(system.clients[:256], rr_selector,
                             n_osts=len(fs.osts)),
        noise)

    pio = LibPio(system, fs_name)
    pio.observe_external_load({o: 3.0 for o in busy_osts})
    libpio_bw = _job_bandwidth(
        system,
        app.output_transfers(system.clients[:256], pio.selector(),
                             n_osts=len(fs.osts)),
        noise)
    return default, libpio_bw


def test_e5_libpio(benchmark, spider2, report):
    (syn_naive, syn_pio) = benchmark.pedantic(
        lambda: _synthetic_scenario(spider2), rounds=1, iterations=1)
    s3d_default, s3d_pio = _s3d_scenario(spider2)

    syn_gain = syn_pio / syn_naive - 1
    s3d_gain = s3d_pio / s3d_default - 1
    text = render_kv([
        ("synthetic, naive placement", f"{syn_naive / GB:.1f} GB/s"),
        ("synthetic, libPIO", f"{syn_pio / GB:.1f} GB/s"),
        ("synthetic gain", f"{syn_gain:+.0%} (paper: >70%)"),
        ("S3D, default allocation", f"{s3d_default / GB:.1f} GB/s"),
        ("S3D, libPIO", f"{s3d_pio / GB:.1f} GB/s"),
        ("S3D gain", f"{s3d_gain:+.0%} (paper: up to 24%)"),
    ], title="libPIO placement gains (paper: §VI-A)")
    report("E5_libpio", text)

    assert syn_gain > 0.70
    assert 0.10 < s3d_gain < 0.40
