"""F2 — Figure 2: the topological XY map of Titan's Lustre routers.

Regenerates the cabinet-grid placement map (router groups interleaved
across the 25×8 floor) and quantifies what the placement buys: the mean
client-to-nearest-router distance versus a corner-packed baseline, and
the Gemini link-load concentration each induces (Lesson 14).
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_kv
from repro.core.placement import (
    clustered_placement,
    evenly_spaced_placement,
    render_cabinet_map,
)
from repro.network.torus import TITAN_TORUS, Torus3D


def _sample_clients(n=200, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (int(rng.integers(0, 25)), int(rng.integers(0, 16)),
         int(rng.integers(0, 24)))
        for _ in range(n)
    ]


def _link_hotspot_ratio(torus, placement, clients):
    """Max/mean load over Gemini links when each client routes to its
    nearest leaf-0 router."""
    by_leaf = [r.coord for r in placement.routers if r.leaf == 0]
    pairs = []
    arr = np.array(by_leaf, dtype=int)
    for c in clients:
        d = torus.distances_from(c, arr)
        pairs.append((c, by_leaf[int(d.argmin())]))
    loads = torus.link_loads(pairs)
    values = np.array(list(loads.values()))
    return float(values.max() / values.mean())


def test_f2_router_placement(benchmark, report):
    torus = Torus3D(TITAN_TORUS)
    clients = _sample_clients()

    even = benchmark.pedantic(evenly_spaced_placement, rounds=1, iterations=1)
    packed = clustered_placement()

    even_dist = even.mean_client_distance(torus, clients)
    packed_dist = packed.mean_client_distance(torus, clients)
    even_hot = _link_hotspot_ratio(torus, even, clients)
    packed_hot = _link_hotspot_ratio(torus, packed, clients)

    text = render_cabinet_map(even)
    text += "\n\n" + render_kv([
        ("routers", len(even.routers)),
        ("I/O modules", len(even.module_coords)),
        ("router groups", even.spec.n_groups),
        ("mean client->router hops (engineered)", f"{even_dist:.2f}"),
        ("mean client->router hops (corner-packed)", f"{packed_dist:.2f}"),
        ("link hot-spot ratio (engineered)", f"{even_hot:.1f}x"),
        ("link hot-spot ratio (corner-packed)", f"{packed_hot:.1f}x"),
    ], title="Placement quality (Lesson 14)")
    report("F2_router_placement", text)

    assert len(even.routers) == 440
    # Four routers per module, four distinct leaves per module.
    leaves = [r.leaf for r in even.routers[:4]]
    assert len(set(leaves)) == 4
    # The engineered placement wins on locality and on congestion.  (The
    # torus wraparound softens the corner-packing penalty, so the locality
    # margin is moderate; the congestion margin is the decisive one.)
    assert even_dist < 0.87 * packed_dist
    assert even_hot < packed_hot
