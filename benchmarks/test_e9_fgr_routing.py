"""E9 — §V-B: fine-grained routing vs naive LNET routing.

"OLCF devised a fine-grained routing (FGR) technique to optimize the path
that I/O must traverse to minimize congestion and latency ...  Network
congestion will lead to sub-optimal I/O performance" (Lesson 14).

Compares FGR against flat round-robin routing on the full Spider II build
along the three axes the paper reasons about: InfiniBand core-switch
crossings, torus path length, and delivered bandwidth under a
namespace-wide write load.
"""

import math

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.core.path import PathBuilder, Transfer
from repro.network.lnet import FineGrainedRouting, RoundRobinRouting
from repro.units import GB


def _evaluate(system, policy_cls, n_clients=1008):
    policy = policy_cls(system.lnet)
    fs = system.filesystems[next(iter(system.filesystems))]
    ns_osts = [o.index for o in fs.osts]
    clients = system.clients[::len(system.clients) // n_clients][:n_clients]

    # Path metrics.
    crossings = []
    hops = []
    for i, client in enumerate(clients):
        oss = system.oss_of_ost(ns_osts[i % len(ns_osts)])
        router = policy.select_router(client.coord, oss.leaf)
        crossings.append(system.fabric.crossings(router.name, oss.name))
        hops.append(system.torus.distance(client.coord, router.coord))

    # Delivered bandwidth under load (fresh policy instance for fairness).
    builder = PathBuilder(system, policy=policy_cls(system.lnet))
    transfers = [
        Transfer(f"w{i}", c, (ns_osts[i % len(ns_osts)],), demand=math.inf)
        for i, c in enumerate(clients)
    ]
    delivered = builder.solve(transfers).total
    return float(np.mean(crossings)), float(np.mean(hops)), delivered


def test_e9_fgr_vs_naive(benchmark, spider2, report):
    fgr = benchmark.pedantic(lambda: _evaluate(spider2, FineGrainedRouting),
                             rounds=1, iterations=1)
    naive = _evaluate(spider2, RoundRobinRouting)

    rows = [
        ("IB switch crossings (mean)", f"{fgr[0]:.2f}", f"{naive[0]:.2f}"),
        ("torus hops to router (mean)", f"{fgr[1]:.2f}", f"{naive[1]:.2f}"),
        ("delivered write bandwidth",
         f"{fgr[2] / GB:.0f} GB/s", f"{naive[2] / GB:.0f} GB/s"),
    ]
    text = render_table(["metric", "FGR", "flat round robin"], rows,
                        title="FGR vs naive LNET routing (paper: §V-B)")
    report("E9_fgr_routing", text)

    # FGR keeps server traffic on the destination leaf (1 crossing);
    # flat routing bounces most of it through core switches (→3).
    assert fgr[0] == pytest.approx(1.0)
    assert naive[0] > 2.5
    # FGR uses topologically closer routers.
    assert fgr[1] < naive[1]
    # Flat routing saturates the thin leaf-to-core trunks and loses a
    # large fraction of the namespace bandwidth (Lesson 14).
    assert fgr[2] > 1.5 * naive[2]
