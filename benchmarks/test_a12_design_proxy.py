"""A12 — Lesson 2: the peak-sequential procurement trap.

"Peak read/write performance cannot be used as a simple proxy for
designing a scratch file system ...  Good random performance translates
to better operational conditions."

Two drive options with identical datasheet sequential ratings — a cheap
desktop-class drive with sluggish repositioning, and the NL-SAS drive
Spider II bought — scored both ways: by the naive sequential proxy, and
under mixes from pure-sequential to pure-random, including the 60/40
Spider operating point.
"""

import pytest

from repro.analysis.design_proxy import compare_disk_options, mixed_delivered_bandwidth
from repro.analysis.reporting import render_series, render_table
from repro.hardware.disk import DiskSpec
from repro.units import MB, MiB

NLSAS = DiskSpec(seq_bw=140 * MB, access_time=0.025, name="nl-sas")
CHEAP = DiskSpec(seq_bw=140 * MB, access_time=0.060, name="desktop-sata")


def test_a12_design_proxy(benchmark, report):
    comparison = benchmark(
        lambda: compare_disk_options(NLSAS, CHEAP, random_fraction=0.4))

    points = []
    for p in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        good = mixed_delivered_bandwidth(NLSAS, p)
        bad = mixed_delivered_bandwidth(CHEAP, p)
        points.append((f"{p:.0%} random", 100 * bad / good))
    series = render_series(
        "byte mix", "cheap drive delivers (% of NL-SAS)", points,
        title="Delivered bandwidth ratio vs workload mix", fmt="{:.0f}%")

    text = render_table(["metric", "value"], comparison.rows(),
                        title="The Lesson 2 procurement trap") + "\n\n" + series
    report("A12_design_proxy", text)

    # The sequential proxy cannot tell the options apart...
    assert comparison.seq_ratio == pytest.approx(1.0)
    # ...but at the Spider operating mix the cheap option delivers far less.
    assert comparison.mixed_ratio < 0.75
    assert comparison.proxy_blind
    # The gap widens monotonically with the random share.
    ratios = [mixed_delivered_bandwidth(CHEAP, p)
              / mixed_delivered_bandwidth(NLSAS, p)
              for p in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
    # Sanity: both options stay inside the paper's single-disk band.
    assert 0.20 <= NLSAS.random_efficiency(1 * MiB) <= 0.25
