"""F3 — Figure 3: IOR write bandwidth vs per-process transfer size.

"We identified that the best performance for writes can be obtained by
using a 1 MB transfer size" (§V-C).  Fixed client count, file-per-process,
one Spider II namespace; the series must peak at 1 MiB.
"""

import pytest

from repro.analysis.reporting import render_series
from repro.iobench.ior import transfer_size_sweep
from repro.units import GB, KiB, MiB

SIZES = (64 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB,
         8 * MiB, 16 * MiB)


def test_f3_transfer_size_sweep(benchmark, spider2, report):
    results = benchmark.pedantic(
        lambda: transfer_size_sweep(spider2, sizes=SIZES, n_processes=672),
        rounds=1, iterations=1)

    points = [
        (f"{r.transfer_size // KiB} KiB", r.aggregate_bw / GB)
        for r in results
    ]
    text = render_series(
        "transfer size", "write GB/s", points,
        title=("IOR file-per-process write, 672 processes, one namespace "
               "(paper: Fig. 3)"))
    report("F3_transfer_size", text)

    by_size = {r.transfer_size: r.aggregate_bw for r in results}
    peak_size = max(by_size, key=by_size.get)
    # The paper's finding: best write performance at the 1 MB transfer.
    assert peak_size == 1 * MiB
    # Rising left shoulder, falling right shoulder.
    assert by_size[64 * KiB] < by_size[512 * KiB] < by_size[MiB]
    assert by_size[MiB] > by_size[4 * MiB] > by_size[16 * MiB]
