"""E11 — §VI-B: IOSI extracts application I/O signatures from noisy
server-side logs.

"IOSI characterizes per-application I/O behavior from the server-side I/O
throughput logs.  We determined application I/O signatures by observing
multiple runs and identifying the common I/O pattern across those runs."

A periodic checkpointing application runs three times inside a shared
server log full of analytics noise; IOSI must recover its period and
burst volume without client-side tracing.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_kv
from repro.sim.rng import RngStreams
from repro.tools.iosi import Iosi
from repro.units import GB, MiB, fmt_size
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace
from repro.workloads.model import merge_traces


def _build_shared_log(seed=21, n_runs=3, run_len=3600.0, gap=900.0):
    rng = RngStreams(seed)
    app = CheckpointApp(name="gtc", n_procs=1024, bytes_per_proc=96 * MiB,
                        interval=600.0, aggregate_bandwidth=60 * GB)
    pieces = []
    windows = []
    for run in range(n_runs):
        t0 = run * (run_len + gap)
        piece = checkpoint_trace(app, duration=run_len,
                                 rng=rng.get(f"run{run}"))
        piece.times += t0
        pieces.append(piece)
        windows.append((t0, t0 + run_len))
    noise = analytics_trace(
        AnalyticsApp(name="background", request_rate=1200.0),
        duration=n_runs * (run_len + gap), rng=rng.get("noise"))
    return app, merge_traces(pieces + [noise], label="server-log"), windows


def test_e11_iosi_signature(benchmark, report):
    app, server_log, windows = _build_shared_log()
    iosi = Iosi(bin_seconds=5.0)
    signature = benchmark.pedantic(
        lambda: iosi.extract(server_log, windows), rounds=1, iterations=1)

    period_err = abs(signature.period - app.interval) / app.interval
    volume_err = (abs(signature.burst_volume_bytes - app.checkpoint_bytes)
                  / app.checkpoint_bytes)
    text = render_kv([
        ("server log requests", f"{len(server_log):,}"),
        ("application runs observed", signature.n_runs),
        ("true burst period", f"{app.interval:.0f} s"),
        ("extracted period", f"{signature.period:.0f} s "
                             f"({period_err:+.1%} error)"),
        ("true burst volume", fmt_size(app.checkpoint_bytes)),
        ("extracted volume", f"{fmt_size(signature.burst_volume_bytes)} "
                             f"({volume_err:+.1%} error)"),
        ("bursts per run", f"{signature.bursts_per_run:.1f}"),
    ], title="IOSI signature extraction (paper: §VI-B)")
    report("E11_iosi", text)

    assert signature.matches(period=app.interval,
                             volume_bytes=app.checkpoint_bytes, rel_tol=0.15)
    assert signature.n_runs == 3
