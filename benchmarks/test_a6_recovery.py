"""A6 — §IV-D ablation: the OLCF-funded Lustre recovery features.

"OLCF direct-funded development efforts ... to produce features including
asymmetric router notification, high-performance Lustre journaling, and
imperative recovery."

Simulates one OSS failover with Titan's full 18,688 clients connected,
across the 2×2 of {standard, imperative} × {stock, high-performance}
journaling, and reports the I/O blackout each combination costs.
"""

import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.lustre.recovery import simulate_recovery, simulate_router_failure


def test_a6_recovery_ablation(benchmark, report):
    def run():
        out = {}
        for imperative in (False, True):
            for hp in (False, True):
                out[(imperative, hp)] = simulate_recovery(
                    imperative=imperative, hp_journaling=hp, seed=4)
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (imperative, hp), o in outcomes.items():
        rows.append((
            "imperative" if imperative else "standard",
            "hp-journal" if hp else "stock",
            f"{o.window_seconds:.0f} s",
            f"{o.replay_seconds:.1f} s",
            f"{o.blackout_seconds:.0f} s",
            o.evicted,
        ))
    text = render_table(
        ["recovery", "journaling", "reconnect window", "replay",
         "I/O blackout", "evicted"],
        rows, title="Failover recovery ablation (paper: §IV-D)")

    # The third funded feature: asymmetric router notification.
    no_arn = simulate_router_failure(arn=False, seed=4)
    with_arn = simulate_router_failure(arn=True, seed=4)
    text += "\n\n" + render_kv([
        ("router failure, timeout discovery",
         f"{no_arn.mean_stall_seconds:.0f} s mean client stall"),
        ("router failure, ARN",
         f"{with_arn.mean_stall_seconds:.1f} s mean client stall"),
        ("ARN improvement",
         f"{no_arn.mean_stall_seconds / with_arn.mean_stall_seconds:.0f}x"),
    ], title="Asymmetric router notification")
    report("A6_recovery", text)

    std = outcomes[(False, False)]
    imp = outcomes[(True, False)]
    both = outcomes[(True, True)]
    # Standard recovery runs out the whole window (dead clients straggle).
    assert std.window_seconds == pytest.approx(300.0)
    # Imperative recovery collapses the window to seconds.
    assert imp.window_seconds < 60.0
    assert imp.blackout_seconds < 0.2 * std.blackout_seconds
    # Journaling shortens replay by its speedup.
    assert both.replay_seconds == pytest.approx(imp.replay_seconds / 3.0)
    # Everyone alive reconnects in every mode.
    assert std.reconnected == imp.reconnected == std.n_clients - std.evicted
    # ARN shrinks per-client router-failure stalls by an order of magnitude.
    assert with_arn.mean_stall_seconds < 0.1 * no_arn.mean_stall_seconds
