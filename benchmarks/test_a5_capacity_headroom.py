"""A5 — Lesson 10 ablation: the ≥30% capacity-headroom rule.

"Ensure that the acquisition strategy provides sufficient total storage
such that performance is maintained up to typical performance degradation
points.  This may require capacity targets 30% or more above aggregate
user workload estimates."

Sweeps the provisioned headroom for a fixed 60-day scratch workload (with
the 14-day purge running) and reports the worst fill level and the
bandwidth retained at it — showing why ~30% is the knee-avoiding choice.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec, fill_penalty
from repro.tools.purger import Purger
from repro.units import DAY, TB

HEADROOMS = (0.0, 0.15, 0.30, 0.50)
#: the operators' estimate of peak live bytes for the project load
WORKLOAD_ESTIMATE = 10.0 * TB


def _run_lifecycle(headroom: float, seed: int = 3) -> tuple[float, float]:
    capacity = int(WORKLOAD_ESTIMATE * (1 + headroom))
    osts = [Ost(i, OstSpec(capacity_bytes=capacity // 4)) for i in range(4)]
    fs = LustreFilesystem("scratch", osts, default_stripe_count=2)
    fs.mkdir("/u", now=0.0)
    purger = Purger(fs)
    rng = np.random.default_rng(seed)
    worst_fill = 0.0
    for day in range(60):
        now = day * DAY
        for k in range(6):
            size = int(rng.uniform(20, 60) * 1e9)
            if fs.capacity_bytes - fs.used_bytes > size:
                fs.create_file(f"/u/d{day}k{k}", now=now, size=size)
        for entry in list(fs.namespace.files()):
            if rng.random() < 0.05:
                fs.read_file(entry.path, now=now)
        if day % 7 == 0:
            purger.sweep(now=now)
        worst_fill = max(worst_fill, fs.fill_fraction)
    return worst_fill, float(fill_penalty(worst_fill))


def test_a5_capacity_headroom_ablation(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: {h: _run_lifecycle(h) for h in HEADROOMS},
        rounds=1, iterations=1)

    rows = [
        (f"{h:.0%}", f"{fill:.0%}", f"{pen:.0%}",
         "yes" if fill <= 0.70 else "NO")
        for h, (fill, pen) in sweep.items()
    ]
    text = render_table(
        ["provisioned headroom", "worst fill (60 d)",
         "bandwidth retained at worst fill", "stays left of 70% knee"],
        rows, title="Capacity-headroom ablation (Lesson 10)")
    report("A5_capacity_headroom", text)

    # No headroom: the purge alone cannot keep scratch off the knee.
    assert sweep[0.0][0] > 0.70
    # The paper's >=30% rule keeps the worst fill left of the knee with
    # near-full bandwidth retained.
    assert sweep[0.30][0] <= 0.70
    assert sweep[0.30][1] >= 0.85
    # More headroom keeps helping, monotonically.
    fills = [sweep[h][0] for h in HEADROOMS]
    assert all(a >= b - 1e-9 for a, b in zip(fills, fills[1:]))
