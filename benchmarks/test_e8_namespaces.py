"""E8 — §IV-C: single vs multiple namespaces and DNE.

"Lustre supports a single metadata server per namespace.  This limitation
cannot sustain the necessary rate of concurrent file system metadata
operations for the OLCF user workloads ...  We recommend using both DNE
and multiple namespaces, concurrently."

Regenerates the metadata-ceiling comparison: one MDS, Spider's 2/4
namespaces, DNE, and DNE + namespaces, for a center-wide op mix.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.lustre.mds import MetadataCluster, OpMix

#: a center-wide metadata mix: heavy creates (checkpoints opening
#: file-per-process), stats (analysis jobs walking outputs), some cleanup
CENTER_MIX = OpMix(creates=40_000, stats=45_000, unlinks=10_000,
                   mkdirs=1_000, readdir_entries=80_000,
                   mean_stripe_count=4.0)


def test_e8_namespace_strategies(benchmark, report):
    configs = [
        ("single namespace (1 MDS)", MetadataCluster(1)),
        ("2 namespaces (Spider II)", MetadataCluster(2, mode="namespaces")),
        ("4 namespaces (Spider I)", MetadataCluster(4, mode="namespaces")),
        ("DNE x4, one namespace", MetadataCluster(4, mode="dne")),
        ("2 namespaces x DNE x2",
         MetadataCluster(4, mode="dne", dne_overhead=0.10)),
    ]

    def run():
        return [(name, cluster.sustainable_rate(CENTER_MIX))
                for name, cluster in configs]

    rates = benchmark(run)
    single = rates[0][1]
    rows = [(name, f"{rate:,.0f} ops/s", f"{rate / single:.2f}x")
            for name, rate in rates]
    text = render_table(["configuration", "sustainable metadata rate",
                         "vs single MDS"], rows,
                        title="Metadata ceilings (paper: §IV-C)")
    report("E8_namespaces", text)

    by_name = dict(rates)
    # The single-MDS ceiling is the binding constraint the paper describes.
    assert by_name["2 namespaces (Spider II)"] > 1.5 * single
    assert by_name["4 namespaces (Spider I)"] > 3.0 * single
    # DNE distributes more evenly than independent namespaces of the same
    # MDS count, at a small cross-MDT tax.
    assert by_name["DNE x4, one namespace"] > by_name["4 namespaces (Spider I)"]
    assert by_name["DNE x4, one namespace"] < 4.0 * single
