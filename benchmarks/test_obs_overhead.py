"""Perf gate: the telemetry spine must stay cheap enough to leave on.

The disabled-path contract (one attribute read per instrument call) is the
reason every hot-path call site can be instrumented unconditionally.  This
bench times the same IOR solve with telemetry+tracing fully enabled vs
disabled and asserts the enabled run stays within 10% — min-of-N,
interleaved, so scheduler noise hits both sides equally.  Results land in
``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.iobench.ior import IorRun
from repro.obs.instruments import Telemetry, use_telemetry
from repro.obs.trace import Tracer, use_tracer

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"

_REPEATS = 7
_OVERHEAD_LIMIT = 0.10


def _run_off(system) -> float:
    t0 = time.perf_counter()
    IorRun(system, n_processes=1008, placement="optimal").run()
    return time.perf_counter() - t0


def _run_on(system) -> float:
    telemetry, tracer = Telemetry(enabled=True), Tracer(enabled=True)
    with use_telemetry(telemetry), use_tracer(tracer):
        t0 = time.perf_counter()
        IorRun(system, n_processes=1008, placement="optimal").run()
        return time.perf_counter() - t0


def test_obs_overhead_under_ten_percent(spider2, report):
    # Warm both paths (imports, allocator, caches) before measuring.
    _run_off(spider2)
    _run_on(spider2)

    off_times, on_times = [], []
    for _ in range(_REPEATS):
        off_times.append(_run_off(spider2))
        on_times.append(_run_on(spider2))

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0

    payload = {
        "benchmark": "obs_overhead",
        "workload": "IorRun(n=1008, optimal) on spider2",
        "repeats": _REPEATS,
        "best_off_s": best_off,
        "best_on_s": best_on,
        "overhead_fraction": overhead,
        "limit_fraction": _OVERHEAD_LIMIT,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report("BENCH_obs", "\n".join([
        f"telemetry off (best of {_REPEATS}): {best_off * 1e3:.2f} ms",
        f"telemetry on  (best of {_REPEATS}): {best_on * 1e3:.2f} ms",
        f"overhead: {overhead:+.1%} (limit {_OVERHEAD_LIMIT:.0%})",
    ]))

    assert overhead < _OVERHEAD_LIMIT, (
        f"telemetry overhead {overhead:.1%} exceeds {_OVERHEAD_LIMIT:.0%} "
        f"({best_on * 1e3:.2f} ms on vs {best_off * 1e3:.2f} ms off)"
    )
