"""A2 — §IV-A ablation: parity declustering's reliability payoff.

"[OLCF] has worked with the vendor community to push new features (e.g.
parity de-clustering for faster disk rebuilds and improved reliability
characteristics) into their products."

Identical 20-year failure traces over the Spider II disk fleet, replayed
with conventional and declustered rebuild windows; plus the closed-form
MTTDL cross-check.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.hardware.raid import RaidGeometry
from repro.ops.reliability import ReliabilitySim, analytic_mttdl_years

YEARS = 20.0
REBUILD_HOURS = 24.0


def test_a2_declustering_ablation(benchmark, report):
    conv = benchmark.pedantic(
        lambda: ReliabilitySim(rebuild_hours=REBUILD_HOURS,
                               declustered=False, seed=1).run(YEARS),
        rounds=1, iterations=1)
    dec = ReliabilitySim(rebuild_hours=REBUILD_HOURS,
                         declustered=True, seed=1).run(YEARS)

    geometry = RaidGeometry()
    mttdl_conv = analytic_mttdl_years(
        geometry, n_groups=2016, annual_failure_rate=0.025,
        rebuild_hours=REBUILD_HOURS)
    mttdl_dec = analytic_mttdl_years(
        geometry, n_groups=2016, annual_failure_rate=0.025,
        rebuild_hours=REBUILD_HOURS / geometry.declustering_speedup)

    rows = [
        ("disk failures / yr", f"{conv.failures_per_year:.0f}",
         f"{dec.failures_per_year:.0f}"),
        ("rebuild window", f"{conv.mean_rebuild_hours:.0f} h",
         f"{dec.mean_rebuild_hours:.0f} h"),
        ("degraded group-hours / yr",
         f"{conv.degraded_group_hours / YEARS:.0f}",
         f"{dec.degraded_group_hours / YEARS:.0f}"),
        ("critical group-hours / yr",
         f"{conv.critical_group_hours / YEARS:.2f}",
         f"{dec.critical_group_hours / YEARS:.2f}"),
        ("data-loss events (20 yr)", conv.data_loss_events,
         dec.data_loss_events),
        ("analytic MTTDL", f"{mttdl_conv:,.0f} yr", f"{mttdl_dec:,.0f} yr"),
    ]
    text = render_table(["metric", "conventional", "declustered"], rows,
                        title="Parity declustering ablation (paper: §IV-A)")
    report("A2_declustering", text)

    # Same failure trace, same failure count.
    assert conv.failures == dec.failures
    # ~500 failures/yr from 20,160 drives at 2.5% AFR (the operational
    # background the culling/monitoring workflows live with).
    assert conv.failures_per_year == pytest.approx(504, rel=0.1)
    # Declustering shrinks double-fault exposure by ~the speedup squared
    # per the chain model; require at least the linear factor.
    speedup = RaidGeometry().declustering_speedup
    assert dec.critical_group_hours < conv.critical_group_hours / speedup
    assert mttdl_dec > 10 * mttdl_conv
    assert conv.data_loss_events == 0  # RAID-6 at this scale: rare
