"""A9 — rebuild windows as a *performance* event, not only a reliability
one.

The paper's reliability features (parity declustering, §IV-A) and the
rebuild arithmetic of the 2010 incident (§IV-E) imply a performance story
the text states indirectly: a rebuilding RAID group serves degraded
bandwidth, and with ~500 drive failures a year (2.5% AFR × 20,160) some
group is almost always rebuilding.  This bench measures the delivered
aggregate with 0..8 concurrent rebuilds and the expected steady-state
loss for conventional vs declustered rebuild windows.
"""

import pytest

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.ops.reliability import ReliabilitySim
from repro.units import GB


def test_a9_rebuild_performance_impact(benchmark, report):
    def run():
        system = build_spider2(seed=11, build_clients=False)
        baseline = system.aggregate_bandwidth(fs_level=True)
        points = [(0, baseline)]
        # Put k groups (spread over SSUs) into rebuild, one member each.
        for k in (1, 2, 4, 8):
            sys_k = build_spider2(seed=11, build_clients=False)
            for i in range(k):
                group = sys_k.ssus[i % 36].groups[i // 36]
                group.erase_member(0)
                group.restore_member(0)  # rebuilding
            total = sum(ssu.aggregate_bandwidth(fs_level=True)
                        for ssu in sys_k.ssus)
            points.append((k, total))
        return baseline, points

    baseline, points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(k, f"{bw / GB:.1f} GB/s", f"{(baseline - bw) / GB:.2f} GB/s")
            for k, bw in points]
    table = render_table(
        ["concurrent rebuilds", "delivered fs-level aggregate", "loss"],
        rows, title="Rebuild windows vs delivered bandwidth")

    # Steady-state expectation from the failure process.
    conv = ReliabilitySim(rebuild_hours=24.0, declustered=False, seed=2).run(10)
    dec = ReliabilitySim(rebuild_hours=24.0, declustered=True, seed=2).run(10)
    hours_per_year = 365.0 * 24.0
    mean_conv = conv.degraded_group_hours / conv.years / hours_per_year
    mean_dec = dec.degraded_group_hours / dec.years / hours_per_year
    per_rebuild_loss = (points[0][1] - points[1][1])
    kv = render_kv([
        ("mean concurrent rebuilds (conventional)", f"{mean_conv:.2f}"),
        ("mean concurrent rebuilds (declustered)", f"{mean_dec:.2f}"),
        ("expected steady bandwidth loss (conventional)",
         f"{mean_conv * per_rebuild_loss / GB:.2f} GB/s"),
        ("expected steady bandwidth loss (declustered)",
         f"{mean_dec * per_rebuild_loss / GB:.2f} GB/s"),
    ], title="\nSteady-state expectation (2.5% AFR fleet)")
    report("A9_rebuild_impact", table + "\n" + kv)

    # Each rebuild costs bandwidth, roughly additively at small k.
    losses = [baseline - bw for _k, bw in points]
    assert losses[0] == 0.0
    assert losses[1] > 0.0
    assert losses[4] == pytest.approx(8 * losses[1], rel=0.25)
    # Declustering shortens windows → fewer concurrent rebuilds on average.
    assert mean_dec < 0.5 * mean_conv
